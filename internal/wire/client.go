package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary client protocol. canopus-server's client port speaks two
// protocols, distinguished by the first byte of the connection: the
// line-oriented text protocol ("GET 7\n") for interactive use, and this
// length-prefixed binary protocol for programs. The binary protocol is
// pipelined: a client may have any number of requests outstanding, and
// responses carry the request's correlation ID so they can complete out
// of submission order (within one connection the server preserves order,
// but clients must not rely on it).
//
// Connection preamble (client -> server): the 4 magic bytes of
// ClientMagic. The first byte is outside ASCII so the server can sniff
// binary vs text mode from one byte.
//
// Frames in both directions are [u32 length][payload], little-endian,
// where length counts payload bytes only:
//
//	request payload:  [u64 id][u8 op][u64 key][u32 vlen][vlen bytes]
//	response payload: [u64 id][u8 status][u32 vlen][vlen bytes]
//
// Statuses: OK (write acknowledged / read hit, value attached), Nil
// (read miss), Err (request rejected; value is a human-readable reason).

// ClientMagic is the binary-mode connection preamble.
var ClientMagic = [4]byte{0xC4, 'N', 'P', 0x01}

// Client response statuses.
const (
	ClientStatusOK  uint8 = 0 // success; reads carry the value
	ClientStatusNil uint8 = 1 // read of an absent key
	ClientStatusErr uint8 = 2 // rejected; value holds the reason
)

// MaxClientFrame bounds client protocol frame sizes in both directions.
const MaxClientFrame = 16 << 20

// MaxBatchOps bounds the operation count of one v2 batch frame: a batch
// is submitted to the node in a single machine turn, so it must respect
// the same per-turn fairness cap as a pipelined group of singles.
const MaxBatchOps = 512

// ErrClientFrame is returned for malformed client protocol frames.
var ErrClientFrame = errors.New("wire: bad client frame")

// ClientRequest is one keyed operation on the binary client port. ID is
// the client-chosen correlation ID echoed in the response.
type ClientRequest struct {
	ID  uint64
	Op  Op
	Key uint64
	Val []byte // write payload; nil for reads
}

// ClientResponse answers one ClientRequest.
type ClientResponse struct {
	ID     uint64
	Status uint8
	Val    []byte
}

const clientReqFixed = 8 + 1 + 8 + 4 // id, op, key, vlen
const clientRespFixed = 8 + 1 + 4    // id, status, vlen

// AppendClientRequest appends q as a length-prefixed frame to b.
func AppendClientRequest(b []byte, q *ClientRequest) []byte {
	b = putU32(b, uint32(clientReqFixed+len(q.Val)))
	b = putU64(b, q.ID)
	b = putU8(b, uint8(q.Op))
	b = putU64(b, q.Key)
	return putBytes(b, q.Val)
}

// ParseClientRequest decodes one request payload (the bytes after the
// length prefix).
func ParseClientRequest(payload []byte) (ClientRequest, error) {
	return ParseClientRequestArena(payload, nil)
}

// ParseClientRequestArena is ParseClientRequest with the value copied
// into *arena (when non-nil) instead of a per-request allocation: the
// server's submit path shares one arena across an accepted group, so
// payload copies cost one allocation per group, not one per request.
// The arena must not be reused while any parsed value is still alive.
func ParseClientRequestArena(payload []byte, arena *[]byte) (ClientRequest, error) {
	r := &reader{b: payload}
	var q ClientRequest
	q.ID = r.u64()
	q.Op = Op(r.u8())
	q.Key = r.u64()
	q.Val = r.bytesArena(arena)
	if r.err != nil || r.off != len(payload) {
		return ClientRequest{}, fmt.Errorf("%w: request (%d bytes)", ErrClientFrame, len(payload))
	}
	if q.Op != OpRead && q.Op != OpWrite {
		return ClientRequest{}, fmt.Errorf("%w: unknown op %d", ErrClientFrame, uint8(q.Op))
	}
	return q, nil
}

// AppendClientResponse appends resp as a length-prefixed frame to b.
func AppendClientResponse(b []byte, resp *ClientResponse) []byte {
	b = putU32(b, uint32(clientRespFixed+len(resp.Val)))
	b = putU64(b, resp.ID)
	b = putU8(b, resp.Status)
	return putBytes(b, resp.Val)
}

// ParseClientResponse decodes one response payload (the bytes after the
// length prefix).
func ParseClientResponse(payload []byte) (ClientResponse, error) {
	r := &reader{b: payload}
	var resp ClientResponse
	resp.ID = r.u64()
	resp.Status = r.u8()
	resp.Val = r.bytes()
	if r.err != nil || r.off != len(payload) {
		return ClientResponse{}, fmt.Errorf("%w: response (%d bytes)", ErrClientFrame, len(payload))
	}
	return resp, nil
}

// ClientFrameLen validates a frame length prefix read off the wire.
func ClientFrameLen(hdr [4]byte) (int, error) {
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxClientFrame {
		return 0, fmt.Errorf("%w: oversized frame (%d bytes)", ErrClientFrame, n)
	}
	return int(n), nil
}

// --- Protocol v2 ---
//
// Version 2 keeps the [u32 length][payload] framing and the pipelined
// correlation-ID model of v1, and adds per-request consistency levels,
// multi-op batch frames, machine-readable error codes, delete, replicated
// client sessions (exactly-once mutations), and a commit-cycle "read
// timestamp" on every response. The connection preamble selects the
// version: the 4th magic byte is 0x01 (v1) or 0x02 (v2), sniffed per
// connection exactly like binary-vs-text mode.
//
//	v2 request payload (single op):
//	  [u64 id][u8 kind=1][u8 op][u8 consistency][u64 minCycle][u64 key][u32 vlen][vlen bytes]
//	v2 request payload (batch):
//	  [u64 id][u8 kind=2][u8 consistency][u64 minCycle][u32 count]
//	  count x ([u8 op][u64 key][u32 vlen][vlen bytes])
//	v2 request payload (session register):
//	  [u64 id][u8 kind=3]
//	v2 request payload (session op):
//	  [u64 id][u8 kind=4][u8 op][u8 consistency][u64 minCycle][u64 session][u64 seq][u64 key][u32 vlen][vlen bytes]
//	v2 request payload (session batch):
//	  [u64 id][u8 kind=5][u8 consistency][u64 minCycle][u64 session][u64 firstSeq][u32 count]
//	  count x ([u8 op][u64 key][u32 vlen][vlen bytes])
//	v2 request payload (session expire):
//	  [u64 id][u8 kind=6][u64 session]
//	v2 response payload (single op):
//	  [u64 id][u8 kind=1][u8 status][u8 code][u64 cycle][u32 vlen][vlen bytes]
//	v2 response payload (batch):
//	  [u64 id][u8 kind=2][u8 code][u64 cycle][u32 count]
//	  count x ([u8 status][u8 code][u32 vlen][vlen bytes])
//
// Consistency levels: Linearizable routes through consensus as v1 did.
// Sequential and Stale are served from the replica's committed state
// without entering a consensus cycle; Sequential additionally waits
// until the replica has committed at least minCycle (the client's last
// observed commit cycle), giving monotonic reads / read-your-writes
// within a client session. The response's cycle field is the commit
// cycle whose state served the request.
//
// Sessions: a register frame asks the serving node to commit a fresh
// session ID through a consensus cycle; the reply's value is the 8-byte
// little-endian ID. Session op / session batch frames carry that ID plus
// a per-session sequence number for each mutation (in a session batch,
// mutating ops consume seqs firstSeq, firstSeq+1, ... in frame order;
// reads consume none). Every replica's state machine keeps a per-session
// dedup table, so a mutation retried after a lost reply returns the
// cached committed result instead of applying twice. A session expire
// frame reclaims the session's replicated state; ops on an expired (or
// idle-reclaimed) session fail with CodeSessionExpired.

// ClientMagicV2 is the protocol-v2 connection preamble.
var ClientMagicV2 = [4]byte{0xC4, 'N', 'P', 0x02}

// Consistency is a client read-consistency level.
type Consistency uint8

const (
	// Linearizable orders the read through a consensus cycle: it
	// observes every write committed before it was issued, anywhere.
	Linearizable Consistency = 0
	// Sequential is served from the local replica's committed state once
	// the replica has committed the client's last observed cycle:
	// monotonic within a session, possibly stale globally.
	Sequential Consistency = 1
	// Stale is served immediately from the local replica's committed
	// state, however far behind it is.
	Stale Consistency = 2
)

func (c Consistency) String() string {
	switch c {
	case Linearizable:
		return "linearizable"
	case Sequential:
		return "sequential"
	case Stale:
		return "stale"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// v2 frame kinds.
const (
	v2KindOp           uint8 = 1
	v2KindBatch        uint8 = 2
	v2KindRegister     uint8 = 3
	v2KindSessionOp    uint8 = 4
	v2KindSessionBatch uint8 = 5
	v2KindExpire       uint8 = 6
)

// v2 response error codes (meaningful when a status is ClientStatusErr).
const (
	CodeNone           uint8 = 0 // no error
	CodeDraining       uint8 = 1 // server shutting down; retry elsewhere
	CodeStalled        uint8 = 2 // node halted (§6); retry elsewhere
	CodeBadRequest     uint8 = 3 // malformed or unsupported request
	CodeSessionExpired uint8 = 4 // session unknown or reclaimed; not retryable
	CodeWatchOverflow  uint8 = 5 // v3: watch resume point already evicted
)

// ClientOp is one keyed operation inside a v2 request.
type ClientOp struct {
	Op  Op
	Key uint64
	Val []byte // write payload; nil for reads and deletes
}

// ClientRequestV2 is one v2 request frame: a single operation, an
// ordered multi-op batch submitted in one machine turn, or a session
// management frame (Register / Expire). Consistency and MinCycle apply
// to every read in the frame. A non-zero Session selects the session
// frame shapes: Seq is the session sequence number of the frame's first
// mutating op, and subsequent mutating ops in a batch consume Seq+1,
// Seq+2, ... in frame order.
type ClientRequestV2 struct {
	ID          uint64
	Batch       bool // encode as a batch frame even when len(Ops) == 1
	Register    bool // session-register frame (no ops)
	Expire      bool // session-expire frame (Session set, no ops)
	Consistency Consistency
	MinCycle    uint64
	Session     uint64
	Seq         uint64
	Ops         []ClientOp

	// v3 extensions (frames a v2 parser rejects; see "Protocol v3").
	Watch      bool   // watch-registration frame
	Unwatch    bool   // watch-cancel frame
	Txn        bool   // transaction frame (TxnGuards/TxnOps carry the body)
	WatchID    uint64 // client-chosen watch identity, stable across reconnects
	WatchKey   uint64 // watched key (or prefix value under PrefixBits)
	PrefixBits uint8  // 64 = exact key, 0 = every key, n = top n key bits
	SinceCycle uint64 // replay events from this commit cycle on (0 = live only)
	TxnGuards  []TxnGuard
	TxnOps     []TxnOp
}

// ClientResult is one operation's outcome inside a v2 batch response.
type ClientResult struct {
	Status uint8
	Code   uint8
	Val    []byte
}

// ClientResponseV2 answers one ClientRequestV2. Cycle is the highest
// commit cycle involved in serving the frame (the read timestamp).
// Single-op responses use Status/Code/Val; batch responses use
// Code/Results.
type ClientResponseV2 struct {
	ID      uint64
	Batch   bool
	Status  uint8
	Code    uint8
	Cycle   uint64
	Val     []byte
	Results []ClientResult

	// v3 extensions: server-push event frames. ID carries the watch ID,
	// Cycle the commit cycle whose changes the frame delivers.
	Event    bool
	Overflow bool // watch killed: consumer too slow or resume point evicted
	Events   []Event
}

const (
	v2ReqOpFixed        = 8 + 1 + 1 + 1 + 8 + 8 + 4         // id, kind, op, consistency, minCycle, key, vlen
	v2ReqBatchFixed     = 8 + 1 + 1 + 8 + 4                 // id, kind, consistency, minCycle, count
	v2ReqElemFixed      = 1 + 8 + 4                         // op, key, vlen
	v2ReqRegisterFixed  = 8 + 1                             // id, kind
	v2ReqSessOpFixed    = 8 + 1 + 1 + 1 + 8 + 8 + 8 + 8 + 4 // id, kind, op, consistency, minCycle, session, seq, key, vlen
	v2ReqSessBatchFixed = 8 + 1 + 1 + 8 + 8 + 8 + 4         // id, kind, consistency, minCycle, session, firstSeq, count
	v2ReqExpireFixed    = 8 + 1 + 8                         // id, kind, session
	v2RespOpFixed       = 8 + 1 + 1 + 1 + 8 + 4             // id, kind, status, code, cycle, vlen
	v2RespBatchFixed    = 8 + 1 + 1 + 8 + 4                 // id, kind, code, cycle, count
	v2RespElemFixed     = 1 + 1 + 4                         // status, code, vlen
)

func validOp(o Op) bool { return o == OpRead || o == OpWrite || o == OpDelete }

// AppendClientRequestV2 appends q as a length-prefixed v2 frame to b.
// Single-op encoding requires exactly one op; Batch forces the batch
// frame shape regardless of op count. Register/Expire take precedence
// over the op shapes; a non-zero Session selects the session op/batch
// frames.
func AppendClientRequestV2(b []byte, q *ClientRequestV2) []byte {
	switch {
	case q.Register:
		b = putU32(b, uint32(v2ReqRegisterFixed))
		b = putU64(b, q.ID)
		return putU8(b, v2KindRegister)
	case q.Expire:
		b = putU32(b, uint32(v2ReqExpireFixed))
		b = putU64(b, q.ID)
		b = putU8(b, v2KindExpire)
		return putU64(b, q.Session)
	case q.Batch:
		n := v2ReqBatchFixed
		kind := v2KindBatch
		if q.Session != 0 {
			n, kind = v2ReqSessBatchFixed, v2KindSessionBatch
		}
		for i := range q.Ops {
			n += v2ReqElemFixed + len(q.Ops[i].Val)
		}
		b = putU32(b, uint32(n))
		b = putU64(b, q.ID)
		b = putU8(b, kind)
		b = putU8(b, uint8(q.Consistency))
		b = putU64(b, q.MinCycle)
		if q.Session != 0 {
			b = putU64(b, q.Session)
			b = putU64(b, q.Seq)
		}
		b = putU32(b, uint32(len(q.Ops)))
		for i := range q.Ops {
			op := &q.Ops[i]
			b = putU8(b, uint8(op.Op))
			b = putU64(b, op.Key)
			b = putBytes(b, op.Val)
		}
		return b
	case q.Session != 0:
		op := &q.Ops[0]
		b = putU32(b, uint32(v2ReqSessOpFixed+len(op.Val)))
		b = putU64(b, q.ID)
		b = putU8(b, v2KindSessionOp)
		b = putU8(b, uint8(op.Op))
		b = putU8(b, uint8(q.Consistency))
		b = putU64(b, q.MinCycle)
		b = putU64(b, q.Session)
		b = putU64(b, q.Seq)
		b = putU64(b, op.Key)
		return putBytes(b, op.Val)
	default:
		op := &q.Ops[0]
		b = putU32(b, uint32(v2ReqOpFixed+len(op.Val)))
		b = putU64(b, q.ID)
		b = putU8(b, v2KindOp)
		b = putU8(b, uint8(op.Op))
		b = putU8(b, uint8(q.Consistency))
		b = putU64(b, q.MinCycle)
		b = putU64(b, op.Key)
		return putBytes(b, op.Val)
	}
}

// ParseClientRequestV2 decodes one v2 request payload.
func ParseClientRequestV2(payload []byte) (ClientRequestV2, error) {
	var q ClientRequestV2
	if err := ParseClientRequestV2Into(payload, &q, nil); err != nil {
		return ClientRequestV2{}, err
	}
	return q, nil
}

// ParseClientRequestV2Into decodes one v2 request payload into *q,
// reusing q's Ops backing array when its capacity suffices, and copying
// values into *arena (when non-nil) instead of per-value allocations —
// the server's submit path shares one arena per accepted group. On
// error *q is left zeroed. The arena must not be reused while any
// parsed value is still alive.
func ParseClientRequestV2Into(payload []byte, q *ClientRequestV2, arena *[]byte) error {
	ops := q.Ops[:0]
	*q = ClientRequestV2{}
	r := &reader{b: payload}
	q.ID = r.u64()
	kind := r.u8()
	switch kind {
	case v2KindOp, v2KindSessionOp:
		var op ClientOp
		op.Op = Op(r.u8())
		q.Consistency = Consistency(r.u8())
		q.MinCycle = r.u64()
		if kind == v2KindSessionOp {
			q.Session = r.u64()
			q.Seq = r.u64()
		}
		op.Key = r.u64()
		op.Val = r.bytesArena(arena)
		q.Ops = append(ops, op)
	case v2KindBatch, v2KindSessionBatch:
		q.Batch = true
		q.Consistency = Consistency(r.u8())
		q.MinCycle = r.u64()
		if kind == v2KindSessionBatch {
			q.Session = r.u64()
			q.Seq = r.u64()
		}
		count := r.count(v2ReqElemFixed)
		if count == 0 && r.err == nil {
			*q = ClientRequestV2{}
			return fmt.Errorf("%w: empty batch", ErrClientFrame)
		}
		if cap(ops) < count {
			ops = make([]ClientOp, 0, count)
		}
		for i := 0; i < count; i++ {
			var op ClientOp
			op.Op = Op(r.u8())
			op.Key = r.u64()
			op.Val = r.bytesArena(arena)
			ops = append(ops, op)
		}
		q.Ops = ops
	case v2KindRegister:
		q.Register = true
	case v2KindExpire:
		q.Expire = true
		q.Session = r.u64()
	default:
		*q = ClientRequestV2{}
		return fmt.Errorf("%w: unknown v2 frame kind %d", ErrClientFrame, kind)
	}
	if r.err != nil || r.off != len(payload) {
		*q = ClientRequestV2{}
		return fmt.Errorf("%w: v2 request (%d bytes)", ErrClientFrame, len(payload))
	}
	// Session frame shapes require a well-formed session ID: zero would
	// re-encode as the sessionless shape (breaking decode∘encode
	// canonicality), and an ID without SessionIDBit could never have
	// been committed by a registration — accepting one would let a
	// client inject a raw Request.Client identity that bypasses the
	// dedup table and collides with connection-scoped reply routing.
	if (kind == v2KindSessionOp || kind == v2KindSessionBatch || kind == v2KindExpire) && !IsSessionID(q.Session) {
		err := fmt.Errorf("%w: invalid session ID %#x", ErrClientFrame, q.Session)
		*q = ClientRequestV2{}
		return err
	}
	if q.Consistency > Stale {
		err := fmt.Errorf("%w: unknown consistency %d", ErrClientFrame, uint8(q.Consistency))
		*q = ClientRequestV2{}
		return err
	}
	for i := range q.Ops {
		if !validOp(q.Ops[i].Op) {
			err := fmt.Errorf("%w: unknown op %d", ErrClientFrame, uint8(q.Ops[i].Op))
			*q = ClientRequestV2{}
			return err
		}
	}
	return nil
}

// AppendClientResponseV2 appends resp as a length-prefixed v2 frame to b.
func AppendClientResponseV2(b []byte, resp *ClientResponseV2) []byte {
	if resp.Batch {
		n := v2RespBatchFixed
		for i := range resp.Results {
			n += v2RespElemFixed + len(resp.Results[i].Val)
		}
		b = putU32(b, uint32(n))
		b = putU64(b, resp.ID)
		b = putU8(b, v2KindBatch)
		b = putU8(b, resp.Code)
		b = putU64(b, resp.Cycle)
		b = putU32(b, uint32(len(resp.Results)))
		for i := range resp.Results {
			b = putU8(b, resp.Results[i].Status)
			b = putU8(b, resp.Results[i].Code)
			b = putBytes(b, resp.Results[i].Val)
		}
		return b
	}
	b = putU32(b, uint32(v2RespOpFixed+len(resp.Val)))
	b = putU64(b, resp.ID)
	b = putU8(b, v2KindOp)
	b = putU8(b, resp.Status)
	b = putU8(b, resp.Code)
	b = putU64(b, resp.Cycle)
	return putBytes(b, resp.Val)
}

// ParseClientResponseV2 decodes one v2 response payload.
func ParseClientResponseV2(payload []byte) (ClientResponseV2, error) {
	r := &reader{b: payload}
	var resp ClientResponseV2
	resp.ID = r.u64()
	kind := r.u8()
	switch kind {
	case v2KindOp:
		resp.Status = r.u8()
		resp.Code = r.u8()
		resp.Cycle = r.u64()
		resp.Val = r.bytes()
	case v2KindBatch:
		resp.Batch = true
		resp.Code = r.u8()
		resp.Cycle = r.u64()
		count := r.count(v2RespElemFixed)
		resp.Results = make([]ClientResult, 0, count)
		for i := 0; i < count; i++ {
			var res ClientResult
			res.Status = r.u8()
			res.Code = r.u8()
			res.Val = r.bytes()
			resp.Results = append(resp.Results, res)
		}
	default:
		return ClientResponseV2{}, fmt.Errorf("%w: unknown v2 frame kind %d", ErrClientFrame, kind)
	}
	if r.err != nil || r.off != len(payload) {
		return ClientResponseV2{}, fmt.Errorf("%w: v2 response (%d bytes)", ErrClientFrame, len(payload))
	}
	if resp.Status > ClientStatusErr {
		return ClientResponseV2{}, fmt.Errorf("%w: unknown status %d", ErrClientFrame, resp.Status)
	}
	for i := range resp.Results {
		if resp.Results[i].Status > ClientStatusErr {
			return ClientResponseV2{}, fmt.Errorf("%w: unknown status %d", ErrClientFrame, resp.Results[i].Status)
		}
	}
	return resp, nil
}

// --- Protocol v3 ---
//
// Version 3 is a strict superset of v2: every v2 frame is valid and
// byte-identical on a v3 connection, and three request kinds plus one
// server-push response kind are added for the event plane. The 4th
// magic byte selects the version (0x03).
//
//	v3 request payload (watch):
//	  [u64 id][u8 kind=7][u64 watchID][u64 key][u8 prefixBits][u64 sinceCycle]
//	v3 request payload (unwatch):
//	  [u64 id][u8 kind=8][u64 watchID]
//	v3 request payload (txn):
//	  [u64 id][u8 kind=9][u64 session][u64 seq][txn body — see AppendTxn]
//	v3 response payload (event, server push, no request correlation):
//	  [u64 watchID][u8 kind=7][u8 flags][u64 cycle][u32 count]
//	  count x ([u8 op][u64 key][u32 vlen][vlen bytes])
//
// A watch delivers every committed change matching (key, prefixBits) in
// commit-cycle order, one event frame per cycle, gap-free: sinceCycle
// asks the server to replay retained history first, which is how a
// client resumes a watch after failing over to another replica. Flags
// bit 0 marks the terminal overflow frame: the server evicted history
// the watch still needed, or the connection could not keep up; the
// watch is dead and the client must re-register (accepting the gap).
//
// A txn frame answers with a v2 single-op response whose value is the
// encoded TxnResult. Session and seq make a txn exactly-once across
// failover, exactly like a session mutation; session 0 submits the txn
// without dedup (at-most-once).

// ClientMagicV3 is the protocol-v3 connection preamble.
var ClientMagicV3 = [4]byte{0xC4, 'N', 'P', 0x03}

// v3 frame kinds (requests 7–9, response 7).
const (
	v3KindWatch   uint8 = 7
	v3KindUnwatch uint8 = 8
	v3KindTxn     uint8 = 9
	v3KindEvent   uint8 = 7
)

const (
	v3ReqWatchFixed   = 8 + 1 + 8 + 8 + 1 + 8 // id, kind, watchID, key, prefixBits, sinceCycle
	v3ReqUnwatchFixed = 8 + 1 + 8             // id, kind, watchID
	v3ReqTxnFixed     = 8 + 1 + 8 + 8         // id, kind, session, seq (+ txn body)
	v3RespEventFixed  = 8 + 1 + 1 + 8 + 4     // watchID, kind, flags, cycle, count
	v3RespEventElem   = 1 + 8 + 4             // op, key, vlen
)

const v3EventFlagOverflow uint8 = 1 << 0

// AppendClientRequestV3 appends q as a length-prefixed v3 frame to b.
// The v3 shapes (Watch / Unwatch / Txn) take precedence; any other
// request encodes exactly as v2.
func AppendClientRequestV3(b []byte, q *ClientRequestV2) []byte {
	switch {
	case q.Watch:
		b = putU32(b, uint32(v3ReqWatchFixed))
		b = putU64(b, q.ID)
		b = putU8(b, v3KindWatch)
		b = putU64(b, q.WatchID)
		b = putU64(b, q.WatchKey)
		b = putU8(b, q.PrefixBits)
		return putU64(b, q.SinceCycle)
	case q.Unwatch:
		b = putU32(b, uint32(v3ReqUnwatchFixed))
		b = putU64(b, q.ID)
		b = putU8(b, v3KindUnwatch)
		return putU64(b, q.WatchID)
	case q.Txn:
		t := Txn{Guards: q.TxnGuards, Ops: q.TxnOps}
		b = putU32(b, uint32(v3ReqTxnFixed+TxnSize(&t)))
		b = putU64(b, q.ID)
		b = putU8(b, v3KindTxn)
		b = putU64(b, q.Session)
		b = putU64(b, q.Seq)
		return AppendTxn(b, &t)
	default:
		return AppendClientRequestV2(b, q)
	}
}

// ParseClientRequestV3Into decodes one v3 request payload into *q with
// the same reuse and arena contract as ParseClientRequestV2Into. Every
// v2 frame kind is accepted unchanged.
func ParseClientRequestV3Into(payload []byte, q *ClientRequestV2, arena *[]byte) error {
	if len(payload) < 9 || payload[8] < v3KindWatch {
		return ParseClientRequestV2Into(payload, q, arena)
	}
	guards, tops := q.TxnGuards[:0], q.TxnOps[:0]
	ops := q.Ops[:0]
	*q = ClientRequestV2{}
	r := &reader{b: payload}
	q.ID = r.u64()
	kind := r.u8()
	switch kind {
	case v3KindWatch:
		q.Watch = true
		q.WatchID = r.u64()
		q.WatchKey = r.u64()
		q.PrefixBits = r.u8()
		q.SinceCycle = r.u64()
		if r.err == nil && q.PrefixBits > 64 {
			err := fmt.Errorf("%w: watch prefix bits %d", ErrClientFrame, q.PrefixBits)
			*q = ClientRequestV2{}
			return err
		}
	case v3KindUnwatch:
		q.Unwatch = true
		q.WatchID = r.u64()
	case v3KindTxn:
		q.Txn = true
		q.Session = r.u64()
		q.Seq = r.u64()
		t := Txn{Guards: guards, Ops: tops}
		if err := parseTxnBody(r, &t, arena); err != nil {
			*q = ClientRequestV2{}
			return err
		}
		q.TxnGuards, q.TxnOps = t.Guards, t.Ops
		// A zero session submits without dedup; a non-zero one must be a
		// committed registration, same rule as the v2 session frames.
		if r.err == nil && q.Session != 0 && !IsSessionID(q.Session) {
			err := fmt.Errorf("%w: invalid session ID %#x", ErrClientFrame, q.Session)
			*q = ClientRequestV2{}
			return err
		}
	default:
		*q = ClientRequestV2{}
		return fmt.Errorf("%w: unknown v3 frame kind %d", ErrClientFrame, kind)
	}
	if r.err != nil || r.off != len(payload) {
		*q = ClientRequestV2{}
		return fmt.Errorf("%w: v3 request (%d bytes)", ErrClientFrame, len(payload))
	}
	q.Ops = ops
	return nil
}

// AppendClientResponseV3 appends resp as a length-prefixed v3 frame to
// b: the event-push shape when Event is set, the v2 encoding otherwise.
func AppendClientResponseV3(b []byte, resp *ClientResponseV2) []byte {
	if !resp.Event {
		return AppendClientResponseV2(b, resp)
	}
	n := v3RespEventFixed
	for i := range resp.Events {
		n += v3RespEventElem + len(resp.Events[i].Val)
	}
	b = putU32(b, uint32(n))
	b = putU64(b, resp.ID)
	b = putU8(b, v3KindEvent)
	var flags uint8
	if resp.Overflow {
		flags |= v3EventFlagOverflow
	}
	b = putU8(b, flags)
	b = putU64(b, resp.Cycle)
	b = putU32(b, uint32(len(resp.Events)))
	for i := range resp.Events {
		e := &resp.Events[i]
		b = putU8(b, uint8(e.Op))
		b = putU64(b, e.Key)
		b = putBytes(b, e.Val)
	}
	return b
}

// ParseClientResponseV3 decodes one v3 response payload. Every v2
// response kind is accepted unchanged.
func ParseClientResponseV3(payload []byte) (ClientResponseV2, error) {
	if len(payload) < 9 || payload[8] != v3KindEvent {
		return ParseClientResponseV2(payload)
	}
	r := &reader{b: payload}
	var resp ClientResponseV2
	resp.ID = r.u64()
	r.u8() // kind, already sniffed
	resp.Event = true
	flags := r.u8()
	resp.Cycle = r.u64()
	count := r.count(v3RespEventElem)
	if count > 0 && r.err == nil {
		resp.Events = make([]Event, 0, count)
	}
	for i := 0; i < count; i++ {
		var e Event
		e.Op = Op(r.u8())
		e.Key = r.u64()
		e.Val = r.bytes()
		if r.err == nil && e.Op != OpWrite && e.Op != OpDelete {
			return ClientResponseV2{}, fmt.Errorf("%w: event op %d", ErrClientFrame, uint8(e.Op))
		}
		resp.Events = append(resp.Events, e)
	}
	if r.err != nil || r.off != len(payload) {
		return ClientResponseV2{}, fmt.Errorf("%w: v3 response (%d bytes)", ErrClientFrame, len(payload))
	}
	if flags&^v3EventFlagOverflow != 0 {
		return ClientResponseV2{}, fmt.Errorf("%w: event flags %#x", ErrClientFrame, flags)
	}
	resp.Overflow = flags&v3EventFlagOverflow != 0
	return resp, nil
}
