package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestClientRequestRoundTrip(t *testing.T) {
	cases := []ClientRequest{
		{ID: 1, Op: OpWrite, Key: 7, Val: []byte("hello")},
		{ID: 1<<63 + 5, Op: OpRead, Key: 0},
		{ID: 0, Op: OpWrite, Key: ^uint64(0), Val: make([]byte, 4096)},
	}
	for _, q := range cases {
		frame := AppendClientRequest(nil, &q)
		n, err := ClientFrameLen([4]byte(frame[:4]))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame)-4 {
			t.Fatalf("frame length %d, payload %d", n, len(frame)-4)
		}
		got, err := ParseClientRequest(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != q.ID || got.Op != q.Op || got.Key != q.Key || !bytes.Equal(got.Val, q.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, q)
		}
	}
}

func TestClientResponseRoundTrip(t *testing.T) {
	cases := []ClientResponse{
		{ID: 42, Status: ClientStatusOK, Val: []byte("v")},
		{ID: 43, Status: ClientStatusNil},
		{ID: 44, Status: ClientStatusErr, Val: []byte("draining")},
	}
	for _, resp := range cases {
		frame := AppendClientResponse(nil, &resp)
		got, err := ParseClientResponse(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != resp.ID || got.Status != resp.Status || !bytes.Equal(got.Val, resp.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, resp)
		}
	}
}

func TestClientFrameErrors(t *testing.T) {
	if _, err := ParseClientRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated request parsed")
	}
	// Trailing garbage is rejected (frames are exactly sized).
	q := ClientRequest{ID: 1, Op: OpRead, Key: 2}
	frame := AppendClientRequest(nil, &q)
	if _, err := ParseClientRequest(append(frame[4:], 0)); err == nil {
		t.Fatal("oversized request parsed")
	}
	// Unknown op rejected.
	bad := ClientRequest{ID: 1, Op: Op(9), Key: 2}
	frame = AppendClientRequest(nil, &bad)
	if _, err := ParseClientRequest(frame[4:]); err == nil {
		t.Fatal("unknown op parsed")
	}
	// Oversized length prefix rejected.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxClientFrame+1)
	if _, err := ClientFrameLen(hdr); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Magic is not valid ASCII text.
	if ClientMagic[0] < 0x80 {
		t.Fatal("magic first byte must be non-ASCII for mode sniffing")
	}
}
