package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestClientRequestRoundTrip(t *testing.T) {
	cases := []ClientRequest{
		{ID: 1, Op: OpWrite, Key: 7, Val: []byte("hello")},
		{ID: 1<<63 + 5, Op: OpRead, Key: 0},
		{ID: 0, Op: OpWrite, Key: ^uint64(0), Val: make([]byte, 4096)},
	}
	for _, q := range cases {
		frame := AppendClientRequest(nil, &q)
		n, err := ClientFrameLen([4]byte(frame[:4]))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame)-4 {
			t.Fatalf("frame length %d, payload %d", n, len(frame)-4)
		}
		got, err := ParseClientRequest(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != q.ID || got.Op != q.Op || got.Key != q.Key || !bytes.Equal(got.Val, q.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, q)
		}
	}
}

func TestClientResponseRoundTrip(t *testing.T) {
	cases := []ClientResponse{
		{ID: 42, Status: ClientStatusOK, Val: []byte("v")},
		{ID: 43, Status: ClientStatusNil},
		{ID: 44, Status: ClientStatusErr, Val: []byte("draining")},
	}
	for _, resp := range cases {
		frame := AppendClientResponse(nil, &resp)
		got, err := ParseClientResponse(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != resp.ID || got.Status != resp.Status || !bytes.Equal(got.Val, resp.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, resp)
		}
	}
}

func TestClientFrameErrors(t *testing.T) {
	if _, err := ParseClientRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated request parsed")
	}
	// Trailing garbage is rejected (frames are exactly sized).
	q := ClientRequest{ID: 1, Op: OpRead, Key: 2}
	frame := AppendClientRequest(nil, &q)
	if _, err := ParseClientRequest(append(frame[4:], 0)); err == nil {
		t.Fatal("oversized request parsed")
	}
	// Unknown op rejected.
	bad := ClientRequest{ID: 1, Op: Op(9), Key: 2}
	frame = AppendClientRequest(nil, &bad)
	if _, err := ParseClientRequest(frame[4:]); err == nil {
		t.Fatal("unknown op parsed")
	}
	// Oversized length prefix rejected.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxClientFrame+1)
	if _, err := ClientFrameLen(hdr); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Magic is not valid ASCII text.
	if ClientMagic[0] < 0x80 {
		t.Fatal("magic first byte must be non-ASCII for mode sniffing")
	}
}

func v2RequestsForTest() []ClientRequestV2 {
	return []ClientRequestV2{
		{ID: 1, Consistency: Linearizable, Ops: []ClientOp{{Op: OpWrite, Key: 7, Val: []byte("hello")}}},
		{ID: 2, Consistency: Stale, Ops: []ClientOp{{Op: OpRead, Key: 9}}},
		{ID: 3, Consistency: Sequential, MinCycle: 41, Ops: []ClientOp{{Op: OpRead, Key: 0}}},
		{ID: 4, Consistency: Linearizable, Ops: []ClientOp{{Op: OpDelete, Key: ^uint64(0)}}},
		{ID: 5, Batch: true, Consistency: Sequential, MinCycle: 9, Ops: []ClientOp{
			{Op: OpWrite, Key: 1, Val: []byte("a")},
			{Op: OpRead, Key: 2},
			{Op: OpDelete, Key: 3},
		}},
		{ID: 6, Batch: true, Consistency: Linearizable, Ops: []ClientOp{{Op: OpRead, Key: 4}}},
		{ID: 7, Register: true},
		{ID: 8, Expire: true, Session: 99 | SessionIDBit},
		{ID: 9, Session: 12 | SessionIDBit, Seq: 5, Consistency: Linearizable,
			Ops: []ClientOp{{Op: OpWrite, Key: 3, Val: []byte("s")}}},
		{ID: 10, Batch: true, Session: 12 | SessionIDBit, Seq: 6, Consistency: Stale, Ops: []ClientOp{
			{Op: OpWrite, Key: 1, Val: []byte("a")},
			{Op: OpRead, Key: 2},
			{Op: OpDelete, Key: 3},
		}},
	}
}

func v2ResponsesForTest() []ClientResponseV2 {
	return []ClientResponseV2{
		{ID: 1, Status: ClientStatusOK, Cycle: 12, Val: []byte("v")},
		{ID: 2, Status: ClientStatusNil, Cycle: 3},
		{ID: 3, Status: ClientStatusErr, Code: CodeDraining, Val: []byte("draining")},
		{ID: 5, Batch: true, Cycle: 14, Results: []ClientResult{
			{Status: ClientStatusOK, Val: []byte("a")},
			{Status: ClientStatusNil},
			{Status: ClientStatusOK},
		}},
		{ID: 6, Batch: true, Code: CodeStalled, Results: []ClientResult{{Status: ClientStatusErr, Val: []byte("node stalled")}}},
		{ID: 7, Status: ClientStatusErr, Code: CodeSessionExpired, Cycle: 7, Val: []byte("session expired")},
		{ID: 8, Batch: true, Cycle: 20, Results: []ClientResult{
			{Status: ClientStatusOK},
			{Status: ClientStatusErr, Code: CodeSessionExpired, Val: []byte("session expired")},
		}},
	}
}

func TestClientV2RequestRoundTrip(t *testing.T) {
	for _, q := range v2RequestsForTest() {
		frame := AppendClientRequestV2(nil, &q)
		n, err := ClientFrameLen([4]byte(frame[:4]))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame)-4 {
			t.Fatalf("frame length %d, payload %d", n, len(frame)-4)
		}
		got, err := ParseClientRequestV2(frame[4:])
		if err != nil {
			t.Fatalf("id %d: %v", q.ID, err)
		}
		if enc := AppendClientRequestV2(nil, &got); !bytes.Equal(enc, frame) {
			t.Fatalf("id %d: re-encode mismatch", q.ID)
		}
		if got.ID != q.ID || got.Batch != q.Batch || got.Consistency != q.Consistency ||
			got.MinCycle != q.MinCycle || len(got.Ops) != len(q.Ops) ||
			got.Register != q.Register || got.Expire != q.Expire ||
			got.Session != q.Session || got.Seq != q.Seq {
			t.Fatalf("round trip: got %+v want %+v", got, q)
		}
		for i := range q.Ops {
			if got.Ops[i].Op != q.Ops[i].Op || got.Ops[i].Key != q.Ops[i].Key ||
				!bytes.Equal(got.Ops[i].Val, q.Ops[i].Val) {
				t.Fatalf("op %d: got %+v want %+v", i, got.Ops[i], q.Ops[i])
			}
		}
	}
}

func TestClientV2ResponseRoundTrip(t *testing.T) {
	for _, resp := range v2ResponsesForTest() {
		frame := AppendClientResponseV2(nil, &resp)
		got, err := ParseClientResponseV2(frame[4:])
		if err != nil {
			t.Fatalf("id %d: %v", resp.ID, err)
		}
		if enc := AppendClientResponseV2(nil, &got); !bytes.Equal(enc, frame) {
			t.Fatalf("id %d: re-encode mismatch", resp.ID)
		}
		if got.ID != resp.ID || got.Batch != resp.Batch || got.Status != resp.Status ||
			got.Code != resp.Code || got.Cycle != resp.Cycle || !bytes.Equal(got.Val, resp.Val) ||
			len(got.Results) != len(resp.Results) {
			t.Fatalf("round trip: got %+v want %+v", got, resp)
		}
	}
}

func TestClientV2FrameErrors(t *testing.T) {
	// Truncated payload.
	if _, err := ParseClientRequestV2([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated v2 request parsed")
	}
	// Unknown frame kind.
	q := ClientRequestV2{ID: 1, Ops: []ClientOp{{Op: OpRead, Key: 2}}}
	frame := AppendClientRequestV2(nil, &q)
	frame[4+8] = 9
	if _, err := ParseClientRequestV2(frame[4:]); err == nil {
		t.Fatal("unknown v2 kind parsed")
	}
	// Unknown consistency.
	frame = AppendClientRequestV2(nil, &q)
	frame[4+8+1+1] = 7
	if _, err := ParseClientRequestV2(frame[4:]); err == nil {
		t.Fatal("unknown consistency parsed")
	}
	// Empty batch rejected.
	empty := ClientRequestV2{ID: 1, Batch: true}
	frame = AppendClientRequestV2(nil, &empty)
	if _, err := ParseClientRequestV2(frame[4:]); err == nil {
		t.Fatal("empty v2 batch parsed")
	}
	// Trailing garbage rejected.
	frame = AppendClientRequestV2(nil, &q)
	if _, err := ParseClientRequestV2(append(frame[4:], 0)); err == nil {
		t.Fatal("oversized v2 request parsed")
	}
	// A session frame with a zero session ID is non-canonical (it would
	// re-encode as the sessionless shape) and must be rejected.
	sq := ClientRequestV2{ID: 1, Session: 5 | SessionIDBit, Seq: 1,
		Ops: []ClientOp{{Op: OpWrite, Key: 2, Val: []byte("x")}}}
	frame = AppendClientRequestV2(nil, &sq)
	binary.LittleEndian.PutUint64(frame[4+8+1+1+1+8:], 0) // zero the session field
	if _, err := ParseClientRequestV2(frame[4:]); err == nil {
		t.Fatal("session op with zero session ID parsed")
	}
	// v1 and v2 preambles differ only in the version byte, and neither
	// starts with ASCII (text-mode sniffing stays one byte).
	if ClientMagicV2[0] < 0x80 || ClientMagicV2[0] != ClientMagic[0] ||
		ClientMagicV2[1] != ClientMagic[1] || ClientMagicV2[2] != ClientMagic[2] ||
		ClientMagicV2[3] == ClientMagic[3] {
		t.Fatal("v2 magic must share the v1 prefix and differ in the version byte")
	}
}

// TestClientCrossVersionRoundTrip pins the v1<->v2 correspondence: any
// v1 frame is expressible as a v2 single-op frame (Linearizable,
// MinCycle 0) and survives the translation in both directions, so a
// server can serve both protocol versions from one internal
// representation.
func TestClientCrossVersionRoundTrip(t *testing.T) {
	reqs := []ClientRequest{
		{ID: 1, Op: OpWrite, Key: 7, Val: []byte("hello")},
		{ID: 2, Op: OpRead, Key: 9},
	}
	for _, q := range reqs {
		// v1 -> v2: parse the v1 frame, lift it into the v2 shape.
		v1, err := ParseClientRequest(AppendClientRequest(nil, &q)[4:])
		if err != nil {
			t.Fatal(err)
		}
		lifted := ClientRequestV2{ID: v1.ID, Consistency: Linearizable,
			Ops: []ClientOp{{Op: v1.Op, Key: v1.Key, Val: v1.Val}}}
		// v2 round trip preserves it.
		got, err := ParseClientRequestV2(AppendClientRequestV2(nil, &lifted)[4:])
		if err != nil {
			t.Fatal(err)
		}
		// v2 -> v1: lower back and compare against the original encoding.
		lowered := ClientRequest{ID: got.ID, Op: got.Ops[0].Op, Key: got.Ops[0].Key, Val: got.Ops[0].Val}
		if !bytes.Equal(AppendClientRequest(nil, &lowered), AppendClientRequest(nil, &q)) {
			t.Fatalf("id %d: cross-version request round trip changed encoding", q.ID)
		}
	}
	resps := []ClientResponse{
		{ID: 1, Status: ClientStatusOK, Val: []byte("v")},
		{ID: 2, Status: ClientStatusNil},
		{ID: 3, Status: ClientStatusErr, Val: []byte("no")},
	}
	for _, resp := range resps {
		v1, err := ParseClientResponse(AppendClientResponse(nil, &resp)[4:])
		if err != nil {
			t.Fatal(err)
		}
		lifted := ClientResponseV2{ID: v1.ID, Status: v1.Status, Val: v1.Val}
		got, err := ParseClientResponseV2(AppendClientResponseV2(nil, &lifted)[4:])
		if err != nil {
			t.Fatal(err)
		}
		lowered := ClientResponse{ID: got.ID, Status: got.Status, Val: got.Val}
		if !bytes.Equal(AppendClientResponse(nil, &lowered), AppendClientResponse(nil, &resp)) {
			t.Fatalf("id %d: cross-version response round trip changed encoding", resp.ID)
		}
	}
}
