package wire

import (
	"sync"
	"sync/atomic"
)

// Encode-buffer pooling. The live transport and the client protocol both
// encode many small messages per event turn; a shared free list keeps the
// per-turn cost at one pooled buffer (re)use instead of one allocation
// per frame.

const (
	// poolBufCap is the initial capacity of fresh pool buffers: large
	// enough for a typical coalesced turn (a few proposals).
	poolBufCap = 16 << 10
	// poolBufMax bounds the capacity of buffers returned to the pool so a
	// single huge frame does not pin memory forever.
	poolBufMax = 4 << 20
)

// pbuf is the pooled carrier: buffers travel behind a pointer so neither
// pool operation boxes a slice header.
type pbuf struct{ b []byte }

// BufPool recycles byte buffers used to encode frames. The zero value is
// ready to use. All methods are safe for concurrent use. Steady state
// allocates nothing: the carrier boxes of emptied buffers are recycled
// through a second free list and reused by Put.
type BufPool struct {
	p     sync.Pool // *pbuf with a buffer
	boxes sync.Pool // *pbuf carriers awaiting reuse

	// gets/puts count calls, not hits: their difference is the number of
	// buffers currently held by callers, which leak tests pin to zero
	// across connection churn.
	gets atomic.Uint64
	puts atomic.Uint64
}

// Outstanding returns Get calls minus Put calls — buffers currently in
// callers' hands. It is a balance check, not a memory gauge: a quiesced
// component that took N buffers must have returned N.
func (bp *BufPool) Outstanding() int64 {
	return int64(bp.gets.Load()) - int64(bp.puts.Load())
}

// Get returns an empty buffer with at least n bytes of capacity.
func (bp *BufPool) Get(n int) []byte {
	bp.gets.Add(1)
	if v, ok := bp.p.Get().(*pbuf); ok {
		b := v.b
		v.b = nil
		bp.boxes.Put(v)
		if cap(b) >= n {
			return b[:0]
		}
	}
	if n < poolBufCap {
		n = poolBufCap
	}
	return make([]byte, 0, n)
}

// Put returns a buffer obtained from Get (possibly grown by appends) to
// the pool. Oversized buffers are dropped to bound pooled memory.
func (bp *BufPool) Put(b []byte) {
	bp.puts.Add(1)
	if cap(b) == 0 || cap(b) > poolBufMax {
		return
	}
	v, ok := bp.boxes.Get().(*pbuf)
	if !ok {
		v = new(pbuf)
	}
	v.b = b[:0]
	bp.p.Put(v)
}

// EncodePool is the process-wide default pool for message encoding.
var EncodePool BufPool
