package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// messages returns one exemplar of every message type with explicit
// (encodable) content.
func exemplars() []Message {
	b := &Batch{
		Origin: 3,
		Reqs: []Request{
			{Client: 1, Seq: 2, Op: OpWrite, Key: 9, Val: []byte("hi")},
			{Client: 1, Seq: 3, Op: OpRead, Key: 9},
		},
		NumRead: 1, NumWrite: 1,
		Samples: []ArrivalSample{{At: 123, Count: 2, Read: true}},
	}
	return []Message{
		&Proposal{Cycle: 7, Round: 2, VNode: "1.2", Origin: 4, Num: 99,
			Batches:  []*Batch{b},
			Updates:  []MemberUpdate{{Node: 5, Leave: true}},
			Leases:   []LeaseRequest{{Key: 11, Node: 2}},
			Sessions: []SessionUpdate{{ID: 21 | SessionIDBit}, {ID: 9 | SessionIDBit, Expire: true}}},
		&ProposalRequest{Cycle: 7, Round: 2, VNode: "1.3", From: 1},
		&RaftAppend{Group: 9, Term: 3, Leader: 0, PrevIndex: 4, PrevTerm: 2, Commit: 4,
			Entries: []RaftEntry{{Term: 3, Payload: &ProposalRequest{Cycle: 1, VNode: "1"}}, {Term: 3}}},
		&RaftAppendReply{Group: 9, Term: 3, From: 2, Success: true, Match: 6},
		&RaftVote{Group: 9, Term: 4, Candidate: 1, LastIndex: 6, LastTerm: 3},
		&RaftVoteReply{Group: 9, Term: 4, From: 2, Granted: true},
		&PreAccept{Replica: 1, Instance: 5, Ballot: 0, Batch: b, Seq: 2,
			Deps: []InstanceRef{{Replica: 0, Instance: 4}}},
		&PreAcceptReply{Replica: 1, Instance: 5, From: 2, OK: true, Seq: 3,
			Deps: []InstanceRef{{Replica: 2, Instance: 1}}},
		&Accept{Replica: 1, Instance: 5, Ballot: 1, Seq: 3},
		&AcceptReply{Replica: 1, Instance: 5, Ballot: 1, From: 0, OK: true},
		&Commit{Replica: 1, Instance: 5, Batch: b, Seq: 3},
		&ZabForward{From: 6, Batch: b},
		&ZabPropose{Epoch: 1, Zxid: 44, Batch: b},
		&ZabAck{Epoch: 1, Zxid: 44, From: 3},
		&ZabCommit{Epoch: 1, Zxid: 44},
		&ZabInform{Epoch: 1, Zxid: 44, Batch: b},
		&Ping{From: 2, Seq: 77},
		&GroupClosed{Origin: 5},
		&JoinRequest{From: 4},
		&JoinReply{From: 2, StartCycle: 12, Alive: []NodeID{0, 1, 2},
			Incarnations: []uint32{0, 1, 0},
			Snapshot:     []Request{{Op: OpWrite, Key: 3, Val: []byte("v")}},
			Sessions: []SessionState{{ID: 4 | SessionIDBit, Low: 3, LastActive: 11,
				Applied: []SessionReply{{Seq: 5, Val: nil}, {Seq: 7, Val: []byte("r")}}}}},
		&Envelope{Origin: 1, Payload: &Ping{From: 1, Seq: 2}},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range exemplars() {
		buf := m.AppendTo(nil)
		if got, want := len(buf), m.WireSize(); got != want {
			t.Errorf("%v: encoded %d bytes, WireSize says %d", m.Kind(), got, want)
		}
		dec, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind(), err)
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d bytes", m.Kind(), n, len(buf))
		}
		if !reflect.DeepEqual(m, dec) {
			t.Errorf("%v: round trip mismatch:\n in: %#v\nout: %#v", m.Kind(), m, dec)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, m := range exemplars() {
		buf := m.AppendTo(nil)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := Decode(buf[:cut]); err == nil {
				// Truncation may still decode if the cut removed only
				// trailing slice payloads whose counts shrank... it must
				// not: counts are length-prefixed, so any cut must fail.
				t.Fatalf("%v: decoding %d/%d bytes succeeded", m.Kind(), cut, len(buf))
			}
		}
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, _, err := Decode([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer decoded")
	}
}

// TestQuickProposalRoundTrip is the property-based version: random
// proposals survive encode/decode bit-exactly.
func TestQuickProposalRoundTrip(t *testing.T) {
	f := func(cycle uint64, round uint8, vnode string, origin int32, num uint64,
		keys []uint64, vals [][]byte, updates []int32) bool {
		if len(vnode) > 1000 {
			vnode = vnode[:1000]
		}
		// Round's domain is 1..LOT height (single digits); the codec
		// reserves the top two bits for the optional sessions section
		// and the eviction Resolve flag.
		round &= 0x3f
		p := &Proposal{Cycle: cycle, Round: round, VNode: vnode, Origin: NodeID(origin), Num: num}
		b := &Batch{Origin: NodeID(origin)}
		b.Reqs = []Request{}
		for i, k := range keys {
			var v []byte
			if i < len(vals) && len(vals[i]) > 0 {
				v = vals[i]
			}
			b.Reqs = append(b.Reqs, Request{Client: k % 7, Seq: uint64(i), Op: OpWrite, Key: k, Val: v})
			b.NumWrite++
		}
		p.Batches = []*Batch{b}
		for _, u := range updates {
			p.Updates = append(p.Updates, MemberUpdate{Node: NodeID(u), Leave: u%2 == 0})
			p.Sessions = append(p.Sessions, SessionUpdate{ID: uint64(u) | SessionIDBit, Expire: u%2 == 0})
		}
		buf := p.AppendTo(nil)
		if len(buf) != p.WireSize() {
			return false
		}
		dec, n, err := Decode(buf)
		return err == nil && n == len(buf) && reflect.DeepEqual(p, dec)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFluidBatchWireSizeCountsModeledBytes(t *testing.T) {
	fluid := &Batch{Origin: 1, NumRead: 10, NumWrite: 5, ByteSize: 500}
	explicit := &Batch{Origin: 1, Reqs: []Request{}, NumRead: 10}
	if fluid.WireSize() <= explicit.WireSize() {
		t.Fatalf("fluid batch must charge its modeled bytes: %d vs %d",
			fluid.WireSize(), explicit.WireSize())
	}
	if got := fluid.PayloadBytes(); got != 500 {
		t.Fatalf("fluid payload = %d, want 500", got)
	}
}
