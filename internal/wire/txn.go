package wire

import "fmt"

// Multi-op transactions. A Txn is a set of guards plus a set of put /
// delete operations encoded into a single OpTxn request's Val, so it
// travels, orders, and dedups exactly like any other mutation. Because
// every replica applies the committed cycle order serially and
// identically, evaluating the guards against the store at apply time is
// deterministic: either every replica applies all of the txn's ops
// (inside one committed entry — no other request can interleave), or
// every replica applies none of them.
//
//	txn body:
//	  [u8 version=1]
//	  [u32 nguards] nguards x ([u8 kind][u64 key][u64 cycle][u32 vlen|nil][vlen bytes])
//	  [u32 nops]    nops x ([u8 op][u8 flags][u64 key][u32 vlen][vlen bytes])
//	txn result:
//	  [u8 committed][u32 failedGuard]
//
// A guard value length of 0xFFFFFFFF encodes nil ("key must be absent");
// length 0 is an empty-but-present value. failedGuard is the index of
// the first guard that failed, or 0xFFFFFFFF when the txn committed.

// Guard kinds.
const (
	// GuardValueEq passes iff the key's current value is byte-equal to
	// the guard's Val (nil Val: the key must be absent). Compare-and-swap
	// is a ValueEq guard plus a put of the new value.
	GuardValueEq uint8 = 1
	// GuardCycleLE passes iff the key's last-modified commit cycle is at
	// or below the guard's Cycle. A key never written (or deleted) has
	// modification cycle 0 and passes every CycleLE guard.
	GuardCycleLE uint8 = 2
)

// TxnFailedNone is the TxnResult.Failed value of a committed txn.
const TxnFailedNone uint32 = ^uint32(0)

// MaxTxnGuards and MaxTxnOps bound one transaction body.
const (
	MaxTxnGuards = 64
	MaxTxnOps    = 64
)

const txnVersion uint8 = 1

// txnNilVal is the on-wire value-length sentinel distinguishing a nil
// guard value ("key absent") from an empty one.
const txnNilVal = ^uint32(0)

// TxnGuard is one transaction precondition.
type TxnGuard struct {
	Kind  uint8
	Key   uint64
	Cycle uint64 // GuardCycleLE bound; ignored for GuardValueEq
	Val   []byte // GuardValueEq expected value; nil means "absent"
}

// TxnOp is one mutation inside a transaction: a put (OpWrite) or a
// delete (OpDelete). Ephemeral puts bind the key to the writer's
// session: when that session expires, the key is deleted automatically
// in the expiring cycle — the mechanism behind lock auto-release.
type TxnOp struct {
	Op        Op
	Key       uint64
	Val       []byte
	Ephemeral bool
}

// Txn is a guarded atomic multi-op transaction.
type Txn struct {
	Guards []TxnGuard
	Ops    []TxnOp
}

// TxnResult is the outcome of a committed-order transaction: either all
// ops applied (Committed, Failed == TxnFailedNone) or the index of the
// first failing guard.
type TxnResult struct {
	Committed bool
	Failed    uint32
}

const txnOpFlagEphemeral uint8 = 1 << 0

// AppendTxn appends the txn body encoding of t to b (no length prefix;
// the body is carried inside an OpTxn request's Val or a v3 txn frame).
func AppendTxn(b []byte, t *Txn) []byte {
	b = putU8(b, txnVersion)
	b = putU32(b, uint32(len(t.Guards)))
	for i := range t.Guards {
		g := &t.Guards[i]
		b = putU8(b, g.Kind)
		b = putU64(b, g.Key)
		b = putU64(b, g.Cycle)
		if g.Val == nil {
			b = putU32(b, txnNilVal)
		} else {
			b = putBytes(b, g.Val)
		}
	}
	b = putU32(b, uint32(len(t.Ops)))
	for i := range t.Ops {
		op := &t.Ops[i]
		b = putU8(b, uint8(op.Op))
		var flags uint8
		if op.Ephemeral {
			flags |= txnOpFlagEphemeral
		}
		b = putU8(b, flags)
		b = putU64(b, op.Key)
		b = putBytes(b, op.Val)
	}
	return b
}

// TxnSize returns len(AppendTxn(nil, t)).
func TxnSize(t *Txn) int {
	n := 1 + 4 + 4
	for i := range t.Guards {
		n += 1 + 8 + 8 + 4 + len(t.Guards[i].Val)
	}
	for i := range t.Ops {
		n += 1 + 1 + 8 + 4 + len(t.Ops[i].Val)
	}
	return n
}

const (
	txnGuardFixed = 1 + 8 + 8 + 4
	txnOpFixed    = 1 + 1 + 8 + 4
)

// emptyGuardVal is the shared non-nil empty guard value.
var emptyGuardVal = []byte{}

// ParseTxn decodes a txn body. Guard and op values alias freshly
// allocated storage; the body must consume the payload exactly.
func ParseTxn(payload []byte) (Txn, error) {
	var t Txn
	r := &reader{b: payload}
	if err := parseTxnBody(r, &t, nil); err != nil {
		return Txn{}, err
	}
	if r.err != nil || r.off != len(payload) {
		return Txn{}, fmt.Errorf("%w: txn body (%d bytes)", ErrClientFrame, len(payload))
	}
	return t, nil
}

// parseTxnBody decodes a txn body from r into t, reusing t's Guards/Ops
// backing arrays when their capacity suffices and copying values into
// *arena (when non-nil). Truncation latches in r.err; semantic
// violations return an error directly. Callers must check r.err and
// exact consumption.
func parseTxnBody(r *reader, t *Txn, arena *[]byte) error {
	guards, tops := t.Guards[:0], t.Ops[:0]
	*t = Txn{}
	if v := r.u8(); r.err == nil && v != txnVersion {
		return fmt.Errorf("%w: txn version %d", ErrClientFrame, v)
	}
	nguards := r.count(txnGuardFixed)
	if nguards > MaxTxnGuards {
		return fmt.Errorf("%w: %d txn guards", ErrClientFrame, nguards)
	}
	if cap(guards) < nguards && r.err == nil {
		guards = make([]TxnGuard, 0, nguards)
	}
	for i := 0; i < nguards; i++ {
		var g TxnGuard
		g.Kind = r.u8()
		g.Key = r.u64()
		g.Cycle = r.u64()
		if n := r.u32(); r.err == nil {
			switch n {
			case txnNilVal:
				g.Val = nil
			case 0:
				// Distinct from nil so decode∘encode stays canonical:
				// nil re-encodes as the absent sentinel, empty as len 0.
				g.Val = emptyGuardVal
			default:
				r.off -= 4
				g.Val = r.bytesArena(arena)
			}
		}
		if r.err == nil && g.Kind != GuardValueEq && g.Kind != GuardCycleLE {
			return fmt.Errorf("%w: txn guard kind %d", ErrClientFrame, g.Kind)
		}
		guards = append(guards, g)
	}
	nops := r.count(txnOpFixed)
	if nops > MaxTxnOps {
		return fmt.Errorf("%w: %d txn ops", ErrClientFrame, nops)
	}
	if nops == 0 && r.err == nil {
		return fmt.Errorf("%w: empty txn", ErrClientFrame)
	}
	if cap(tops) < nops && r.err == nil {
		tops = make([]TxnOp, 0, nops)
	}
	for i := 0; i < nops; i++ {
		var op TxnOp
		op.Op = Op(r.u8())
		flags := r.u8()
		op.Key = r.u64()
		op.Val = r.bytesArena(arena)
		if r.err == nil {
			if op.Op != OpWrite && op.Op != OpDelete {
				return fmt.Errorf("%w: txn op %d", ErrClientFrame, uint8(op.Op))
			}
			if flags&^txnOpFlagEphemeral != 0 {
				return fmt.Errorf("%w: txn op flags %#x", ErrClientFrame, flags)
			}
			op.Ephemeral = flags&txnOpFlagEphemeral != 0
			if op.Ephemeral && op.Op != OpWrite {
				return fmt.Errorf("%w: ephemeral txn delete", ErrClientFrame)
			}
		}
		tops = append(tops, op)
	}
	if r.err != nil {
		return nil
	}
	t.Guards, t.Ops = guards, tops
	return nil
}

const txnResultSize = 1 + 4

// AppendTxnResult appends the encoding of res to b.
func AppendTxnResult(b []byte, res TxnResult) []byte {
	committed := uint8(0)
	if res.Committed {
		committed = 1
	}
	b = putU8(b, committed)
	return putU32(b, res.Failed)
}

// ParseTxnResult decodes a txn result (an OpTxn reply's value).
func ParseTxnResult(payload []byte) (TxnResult, error) {
	r := &reader{b: payload}
	var res TxnResult
	c := r.u8()
	res.Failed = r.u32()
	if r.err != nil || r.off != len(payload) || c > 1 {
		return TxnResult{}, fmt.Errorf("%w: txn result (%d bytes)", ErrClientFrame, len(payload))
	}
	res.Committed = c == 1
	if res.Committed != (res.Failed == TxnFailedNone) {
		return TxnResult{}, fmt.Errorf("%w: inconsistent txn result", ErrClientFrame)
	}
	return res, nil
}

// Event is one key change observed on the apply stream: the mutation
// that produced it (OpWrite or OpDelete) plus the key's new value.
// Session-expiry deletions of ephemeral keys surface as OpDelete events
// in the cycle that expired the owning session.
type Event struct {
	Op  Op
	Key uint64
	Val []byte // nil for deletes
}
