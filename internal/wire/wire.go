// Package wire defines the message types exchanged by every protocol in
// this repository (Canopus, Raft, EPaxos, Zab) together with a compact
// binary codec.
//
// Messages serve double duty:
//
//   - On the real TCP transport they are encoded with AppendTo and decoded
//     with Decode (length-prefixed framing lives in internal/transport).
//   - On the discrete-event simulator they are passed by pointer and only
//     WireSize is consulted, so the cost of a message on a link is modeled
//     without actually serializing it.
//
// Because the simulator hands the same message pointer to several
// recipients, received messages must be treated as read-only; protocol
// code copies any slice it needs to mutate.
package wire

import "fmt"

// NodeID identifies a physical protocol participant (a pnode in Canopus
// terms, a replica in EPaxos/Zab terms). IDs are dense small integers
// assigned by the topology builder.
type NodeID int32

// NoNode is the zero-value-adjacent sentinel for "no node".
const NoNode NodeID = -1

func (n NodeID) String() string {
	if n == NoNode {
		return "none"
	}
	return fmt.Sprintf("n%d", int32(n))
}

// Op is the kind of a client request.
type Op uint8

const (
	// OpRead is a key read. Canopus never puts reads on the wire; other
	// protocols do.
	OpRead Op = iota
	// OpWrite is a key write.
	OpWrite
	// OpDelete removes a key. Deletes travel and order exactly like
	// writes (they mutate replicated state); only the state machine
	// treats them differently.
	OpDelete
	// OpTxn is a guarded multi-op transaction. The request's Val carries
	// the encoded Txn body (see AppendTxn); Key is unused. A txn travels
	// and orders exactly like a write — the committed cycle order makes
	// it atomic for free — and its guards are evaluated against the
	// store at apply time, identically on every replica.
	OpTxn
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpTxn:
		return "txn"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mutates reports whether the operation changes replicated state (and
// therefore must be disseminated and ordered by consensus).
func (o Op) Mutates() bool { return o == OpWrite || o == OpDelete || o == OpTxn }

// Request is a single client key-value operation. The paper's workload
// uses 16-byte key-value pairs: an 8-byte key plus an 8-byte value, which
// is the natural fit for Key plus a short Val.
type Request struct {
	Client uint64 // client identity, unique across the deployment
	Seq    uint64 // per-client sequence number (FIFO order)
	Op     Op
	Key    uint64
	Val    []byte // nil for reads
}

// PayloadBytes returns the modeled wire footprint of the request body,
// matching its encoded size exactly.
func (r *Request) PayloadBytes() int { return requestSize(r) }

// ArrivalSample records when a group of requests arrived at a node. The
// fluid workload mode aggregates many arrivals into a handful of samples
// so that request latency can be measured without materializing every
// request as an event.
type ArrivalSample struct {
	At    int64  // virtual (or wall) time in nanoseconds
	Count uint32 // number of requests this sample stands for
	Read  bool   // whether the sampled requests are reads
}

// Batch is the unit of ordering in every protocol here: the set of
// requests a node accumulated during one batching window (one consensus
// cycle in Canopus, one batch duration in EPaxos/Zab).
//
// A batch is either explicit (Reqs non-nil; counts and sizes derived) or
// fluid (Reqs nil; NumRead/NumWrite/ByteSize carry aggregate totals).
// Fluid batches let the simulator model multi-million-request-per-second
// workloads with event counts proportional to messages, not requests.
type Batch struct {
	Origin   NodeID
	Reqs     []Request // explicit mode; nil in fluid mode
	NumRead  uint32
	NumWrite uint32
	ByteSize uint32 // fluid mode payload bytes
	Samples  []ArrivalSample
}

// Requests returns the total number of requests in the batch.
func (b *Batch) Requests() int { return int(b.NumRead) + int(b.NumWrite) }

// PayloadBytes returns the modeled payload size of the batch body: the
// encoded size of explicit requests, or ByteSize for fluid batches.
func (b *Batch) PayloadBytes() int {
	if b.Reqs != nil {
		n := 0
		for i := range b.Reqs {
			n += b.Reqs[i].PayloadBytes()
		}
		return n
	}
	return int(b.ByteSize)
}

// WireSize returns the modeled on-wire size of the batch including its
// fixed header and arrival samples. For explicit batches it equals the
// encoded size exactly.
func (b *Batch) WireSize() int { return batchSize(b) }

// MemberUpdate announces a membership change inside a super-leaf. Updates
// ride on Canopus proposal messages so that every node applies the same
// change at the same cycle boundary (paper §4.6).
type MemberUpdate struct {
	Node  NodeID
	Leave bool // true: node left/crashed; false: node (re)joined
	// Resurrect marks a join sponsored from OUTSIDE the joiner's
	// super-leaf — valid only while that leaf is fully empty (evicted).
	// The sponsor checks emptiness when it accepts the request, but the
	// update commits a cycle later; if the leaf gained a member in
	// between, every node voids the update at apply time (identically,
	// from the committed pre-cycle view) instead of admitting a member
	// whose sponsor could only hand it stale broadcast incarnations.
	Resurrect bool
}

// LeaseRequest asks for or releases a write lease on a key (paper §7.2).
type LeaseRequest struct {
	Key     uint64
	Node    NodeID
	Release bool
}

// SessionIDBit marks a Request.Client identity as a replicated client
// session. Session IDs are drawn with this bit set; connection-scoped
// identities (and the driver sentinel) keep it clear, so the apply path
// can tell session traffic apart without a per-request flag.
const SessionIDBit uint64 = 1 << 63

// IsSessionID reports whether a Request.Client identity names a
// replicated client session (see SessionIDBit).
func IsSessionID(client uint64) bool { return client&SessionIDBit != 0 }

// SessionUpdate registers or expires a replicated client session. Like
// MemberUpdate, session updates ride proposal messages so every replica
// applies the same change at the same cycle boundary — the session dedup
// table is replicated state.
type SessionUpdate struct {
	ID     uint64
	Expire bool // true: reclaim the session; false: register it
}

// SessionReply is one cached (seq, reply) pair inside a SessionState.
type SessionReply struct {
	Seq uint64
	Val []byte
}

// SessionState is one session's dedup state in a join-protocol state
// transfer: the compaction floor (every seq below it is known applied),
// the commit cycle of the session's last mutation, and the cached
// replies for applied seqs at or above the floor.
type SessionState struct {
	ID         uint64
	Low        uint64
	LastActive uint64
	Applied    []SessionReply
}

// Kind discriminates message types on the wire.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Canopus (paper §4.2).
	KindProposal        // proposal / proposal-response
	KindProposalRequest // representative asks an emulator for a vnode state

	// Raft (paper §4.3 reliable broadcast substrate).
	KindRaftAppend
	KindRaftAppendReply
	KindRaftVote
	KindRaftVoteReply

	// EPaxos baseline.
	KindPreAccept
	KindPreAcceptReply
	KindAccept
	KindAcceptReply
	KindCommit

	// Zab / ZooKeeper baseline.
	KindZabForward
	KindZabPropose
	KindZabAck
	KindZabCommit
	KindZabInform

	// Membership and liveness.
	KindPing        // heartbeat for the switch-assisted broadcast variant
	KindGroupClosed // barrier closing a failed origin's broadcast group
	KindJoinRequest // restarted node asks a live peer to sponsor its re-join
	KindJoinReply   // sponsor's snapshot + start cycle
	KindBroadcast   // switch-assisted broadcast envelope

	// Leaf-granular fault tolerance (RCanopus direction).
	KindLeafSeal     // intra-leaf broadcast: stop accepting a vnode's state for a cycle
	KindEvictQuery   // representative asks a remote leaf to seal-or-serve a vnode state
	KindEvictPromise // remote leaf's promise that the vnode state is sealed out
	KindEvicted      // notice to an evicted leaf's members: stop, rejoin fresh

	kindMax
)

var kindNames = [...]string{
	KindInvalid:         "invalid",
	KindProposal:        "proposal",
	KindProposalRequest: "proposal-request",
	KindRaftAppend:      "raft-append",
	KindRaftAppendReply: "raft-append-reply",
	KindRaftVote:        "raft-vote",
	KindRaftVoteReply:   "raft-vote-reply",
	KindPreAccept:       "preaccept",
	KindPreAcceptReply:  "preaccept-reply",
	KindAccept:          "accept",
	KindAcceptReply:     "accept-reply",
	KindCommit:          "commit",
	KindZabForward:      "zab-forward",
	KindZabPropose:      "zab-propose",
	KindZabAck:          "zab-ack",
	KindZabCommit:       "zab-commit",
	KindZabInform:       "zab-inform",
	KindPing:            "ping",
	KindGroupClosed:     "group-closed",
	KindJoinRequest:     "join-request",
	KindJoinReply:       "join-reply",
	KindBroadcast:       "broadcast",
	KindLeafSeal:        "leaf-seal",
	KindEvictQuery:      "evict-query",
	KindEvictPromise:    "evict-promise",
	KindEvicted:         "evicted",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is implemented by every protocol message.
type Message interface {
	// Kind identifies the concrete type.
	Kind() Kind
	// WireSize is the modeled encoded size in bytes. It must equal
	// len(AppendTo(nil)) for explicit-mode messages; fluid-mode batches
	// contribute their modeled ByteSize instead of encoded bytes.
	WireSize() int
	// AppendTo appends the binary encoding of the message to b.
	AppendTo(b []byte) []byte
}

// Proposal is the Canopus proposal message M_i = {R', N', F', C, i, v}
// (paper §4.2): the ordered request sets from the previous round, the
// largest proposal number seen, pending membership updates, the cycle ID,
// round number and the (v)node whose state it carries. It is used both as
// the round-1 broadcast and as the response to a ProposalRequest.
type Proposal struct {
	Cycle  uint64
	Round  uint8
	VNode  string // vnode path ("1.2"); for round 1 the origin pnode's parent is implied
	Origin NodeID // pnode that produced the message
	Num    uint64 // proposal number: round 1 random draw, later rounds the max of merged children

	// Batches is the ordered list of request sets represented by this
	// proposal: a single batch in round 1, the merged ordered list in
	// later rounds (children concatenated in ascending proposal-number
	// order, ties broken by vnode ID then origin — paper §4.2). The
	// order is identical on all nodes.
	Batches []*Batch

	Updates  []MemberUpdate
	Leases   []LeaseRequest
	Sessions []SessionUpdate

	// Resolve marks a proposal that is allowed past a leaf seal: either a
	// sealed-out vnode's real state served by a node that already held it,
	// or the eviction tombstone substituted for a dead leaf's subtree.
	// Plain (non-Resolve) states for a sealed vnode are dropped, which is
	// what makes an eviction round converge on one value per (cycle,
	// vnode) cluster-wide.
	Resolve bool
}

func (p *Proposal) Kind() Kind { return KindProposal }

// ProposalRequest asks an emulator of VNode for that vnode's state in the
// given cycle and round (paper §4.2). The receiver answers with a Proposal
// once it has computed the state, buffering the request if it has not.
type ProposalRequest struct {
	Cycle uint64
	Round uint8
	VNode string
	From  NodeID
}

func (p *ProposalRequest) Kind() Kind { return KindProposalRequest }

// RaftEntry is one replicated log slot in a reliable-broadcast Raft group.
type RaftEntry struct {
	Term    uint64
	Payload Message // nil for no-op barrier entries
}

// RaftAppend is AppendEntries: log replication plus heartbeat. Group
// identifies which per-origin broadcast group (or standalone Raft cluster)
// the message belongs to.
type RaftAppend struct {
	Group     uint64
	Term      uint64
	Leader    NodeID
	PrevIndex uint64
	PrevTerm  uint64
	Commit    uint64
	// Base is the leader's log compaction offset: entries at or below it
	// have been discarded after being applied group-wide. A fresh
	// (rejoined) follower may adopt the leader's base as its own log
	// start, but must replay from index 1 when the leader still retains
	// the full log.
	Base    uint64
	Entries []RaftEntry
}

func (m *RaftAppend) Kind() Kind { return KindRaftAppend }

// RaftAppendReply acknowledges (or rejects) an AppendEntries call.
type RaftAppendReply struct {
	Group   uint64
	Term    uint64
	From    NodeID
	Success bool
	Match   uint64 // highest index known replicated on success; hint on failure
}

func (m *RaftAppendReply) Kind() Kind { return KindRaftAppendReply }

// RaftVote is RequestVote.
type RaftVote struct {
	Group     uint64
	Term      uint64
	Candidate NodeID
	LastIndex uint64
	LastTerm  uint64
}

func (m *RaftVote) Kind() Kind { return KindRaftVote }

// RaftVoteReply answers RequestVote.
type RaftVoteReply struct {
	Group   uint64
	Term    uint64
	From    NodeID
	Granted bool
}

func (m *RaftVoteReply) Kind() Kind { return KindRaftVoteReply }

// PreAccept is the EPaxos fast-path proposal for one instance.
type PreAccept struct {
	Replica  NodeID // command leader
	Instance uint64
	Ballot   uint64
	Batch    *Batch
	Seq      uint64
	Deps     []InstanceRef
}

func (m *PreAccept) Kind() Kind { return KindPreAccept }

// InstanceRef names an EPaxos instance (replica, slot).
type InstanceRef struct {
	Replica  NodeID
	Instance uint64
}

// PreAcceptReply is the fast-path acknowledgement.
type PreAcceptReply struct {
	Replica  NodeID
	Instance uint64
	Ballot   uint64
	From     NodeID
	OK       bool
	Seq      uint64
	Deps     []InstanceRef
}

func (m *PreAcceptReply) Kind() Kind { return KindPreAcceptReply }

// Accept is the EPaxos slow-path round (used when fast-path replies
// disagree; with zero command interference it never fires, but it is
// implemented and tested).
type Accept struct {
	Replica  NodeID
	Instance uint64
	Ballot   uint64
	Seq      uint64
	Deps     []InstanceRef
}

func (m *Accept) Kind() Kind { return KindAccept }

// AcceptReply acknowledges Accept.
type AcceptReply struct {
	Replica  NodeID
	Instance uint64
	Ballot   uint64
	From     NodeID
	OK       bool
}

func (m *AcceptReply) Kind() Kind { return KindAcceptReply }

// Commit announces a committed EPaxos instance.
type Commit struct {
	Replica  NodeID
	Instance uint64
	Batch    *Batch
	Seq      uint64
	Deps     []InstanceRef
}

func (m *Commit) Kind() Kind { return KindCommit }

// ZabForward carries a client write batch from a follower/observer to the
// Zab leader.
type ZabForward struct {
	From  NodeID
	Batch *Batch
}

func (m *ZabForward) Kind() Kind { return KindZabForward }

// ZabPropose is the leader's proposal to voting followers.
type ZabPropose struct {
	Epoch uint64
	Zxid  uint64
	Batch *Batch
}

func (m *ZabPropose) Kind() Kind { return KindZabPropose }

// ZabAck acknowledges a proposal.
type ZabAck struct {
	Epoch uint64
	Zxid  uint64
	From  NodeID
}

func (m *ZabAck) Kind() Kind { return KindZabAck }

// ZabCommit commits a proposal on voting followers.
type ZabCommit struct {
	Epoch uint64
	Zxid  uint64
}

func (m *ZabCommit) Kind() Kind { return KindZabCommit }

// ZabInform delivers a committed transaction to observers, which do not
// vote (paper §8.1.2: ZooKeeper configured with 5 followers + observers).
type ZabInform struct {
	Epoch uint64
	Zxid  uint64
	Batch *Batch
}

func (m *ZabInform) Kind() Kind { return KindZabInform }

// Ping is the liveness heartbeat used by the switch-assisted broadcast
// variant (the Raft variant's AppendEntries doubles as its heartbeat).
type Ping struct {
	From NodeID
	Seq  uint64
}

func (m *Ping) Kind() Kind { return KindPing }

// GroupClosed is the barrier entry a takeover leader appends to a failed
// origin's broadcast group. Ordering it in the group log gives all
// survivors an identical cut: every proposal of Origin delivered before
// the barrier counts, nothing after it ever will. This is what makes the
// super-leaf's delivered-message sets identical despite asynchronous
// failure detection (paper assumption A4 / Lemma 1).
type GroupClosed struct {
	Origin NodeID
}

func (m *GroupClosed) Kind() Kind { return KindGroupClosed }

// JoinRequest asks a live super-leaf peer to sponsor this node's re-join
// (paper §3, assumption 6: failed nodes rejoin via a join protocol).
type JoinRequest struct {
	From NodeID
}

func (m *JoinRequest) Kind() Kind { return KindJoinRequest }

// JoinReply carries the sponsor's state transfer: the cycle at which the
// joiner becomes live, the sponsor's membership view and a state-machine
// snapshot (explicit pairs in correctness tests, modeled bytes in fluid
// benchmarks).
type JoinReply struct {
	From       NodeID
	StartCycle uint64
	Alive      []NodeID
	// Incarnations is aligned with Alive: how many times each member has
	// re-joined, so the joiner's broadcast group IDs match the
	// survivors'. The joiner's own (new) incarnation is included.
	Incarnations []uint32
	Snapshot     []Request // OpWrite entries reconstructing the KV state
	StateBytes   uint32    // modeled snapshot size when Snapshot is nil
	// Sessions transfers the replicated client-session dedup table, so a
	// rejoined replica classifies retried mutations exactly like the
	// replicas that never crashed.
	Sessions []SessionState
}

func (m *JoinReply) Kind() Kind { return KindJoinReply }

// LeafSeal is the intra-leaf broadcast that closes a (cycle, vnode) slot
// during a leaf-eviction round. Because it is ordered by the same
// reliable broadcast that delivers vnode states, every member of the
// sealing leaf agrees on whether the real state arrived before the seal:
// after delivery, plain proposals for the vnode are refused and only a
// Resolve-flagged proposal (the held state or the tombstone) fills it.
type LeafSeal struct {
	Cycle     uint64
	VNode     string
	Initiator NodeID // who to answer with EvictPromise (or the held state)
}

func (m *LeafSeal) Kind() Kind { return KindLeafSeal }

// EvictQuery asks a member of another super-leaf to resolve a (cycle,
// vnode) slot for an eviction round: reply with the vnode's state
// (Resolve-flagged) if the leaf holds it, otherwise seal the slot and
// reply with an EvictPromise.
type EvictQuery struct {
	Cycle uint64
	VNode string
	From  NodeID
}

func (m *EvictQuery) Kind() Kind { return KindEvictQuery }

// EvictPromise is a leaf's binding answer to an EvictQuery: the (cycle,
// vnode) slot is sealed leaf-wide and no member will accept or serve a
// plain state for it.
type EvictPromise struct {
	Cycle uint64
	VNode string
	From  NodeID
}

func (m *EvictPromise) Kind() Kind { return KindEvictPromise }

// Evicted tells a node that the rest of the cluster has removed its
// super-leaf from the membership view. The receiver must stop
// participating with its current state and rejoin through the join
// protocol; the sender also uses this reactively to refuse messages from
// nodes its view says are dead.
type Evicted struct {
	From NodeID
}

func (m *Evicted) Kind() Kind { return KindEvicted }

// Envelope wraps a payload multicast through the switch-assisted
// broadcast path, so receivers can tell an atomic-broadcast delivery from
// a directly addressed message carrying the same payload type.
type Envelope struct {
	Origin  NodeID
	Payload Message
}

func (m *Envelope) Kind() Kind { return KindBroadcast }
