package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary layout: little-endian fixed-width integers, length-prefixed
// slices (u32 counts, u16 string lengths). Every message starts with one
// Kind byte so a frame can be decoded without out-of-band type info.
//
// For explicit messages WireSize equals len(AppendTo(nil)) exactly; fluid
// batches (Reqs == nil) additionally count their modeled ByteSize so the
// simulator charges links for the bytes the batch stands for.

// ErrTruncated is returned when a buffer ends before a full message.
var ErrTruncated = errors.New("wire: truncated message")

// ErrUnknownKind is returned for an unrecognized kind byte.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// ErrBadBool is returned when a boolean field is neither 0 nor 1. The
// codec only ever writes 0/1, so anything else is corruption; rejecting
// it also keeps decoding canonical (decode∘encode is the identity on
// every accepted buffer), which the codec fuzz target checks.
var ErrBadBool = errors.New("wire: invalid boolean encoding")

func putU8(b []byte, v uint8) []byte   { return append(b, v) }
func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func putNode(b []byte, n NodeID) []byte { return putU32(b, uint32(int32(n))) }

func putString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = putU16(b, uint16(len(s)))
	return append(b, s...)
}

func putBytes(b, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}

// reader is a cursor over an encoded buffer. All accessors are
// error-latching: after the first failure every further read returns the
// zero value, so decode functions can read unconditionally and check err
// once (the bufio error-latching idiom).
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) boolean() bool {
	v := r.u8()
	if v > 1 && r.err == nil {
		r.err = ErrBadBool
	}
	return v == 1
}

func (r *reader) node() NodeID { return NodeID(int32(r.u32())) }

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	return r.bytesArena(nil)
}

// bytesArena reads a length-prefixed byte string, copying it into *arena
// (when non-nil) instead of a dedicated allocation. Growth of the arena
// leaves previously returned slices pointing into the old backing array,
// which stays valid — callers just must not recycle an arena while any
// slice carved from it is alive.
func (r *reader) bytesArena(arena *[]byte) []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	var v []byte
	if arena != nil {
		a := append(*arena, r.b[r.off:r.off+n]...)
		*arena = a
		v = a[len(a)-n:]
	} else {
		v = make([]byte, n)
		copy(v, r.b[r.off:])
	}
	r.off += n
	return v
}

// count reads a u32 element count and bounds it by the remaining bytes so
// a corrupt length cannot trigger a huge allocation.
func (r *reader) count(minElemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minElemSize > 0 && n > (len(r.b)-r.off)/minElemSize+1 {
		r.fail()
		return 0
	}
	return n
}

// --- Request / Batch ---

const requestFixedSize = 8 + 8 + 1 + 8 + 4 // client, seq, op, key, val-len

func requestSize(q *Request) int { return requestFixedSize + len(q.Val) }

func appendRequest(b []byte, q *Request) []byte {
	b = putU64(b, q.Client)
	b = putU64(b, q.Seq)
	b = putU8(b, uint8(q.Op))
	b = putU64(b, q.Key)
	return putBytes(b, q.Val)
}

func readRequest(r *reader, q *Request) {
	q.Client = r.u64()
	q.Seq = r.u64()
	q.Op = Op(r.u8())
	q.Key = r.u64()
	q.Val = r.bytes()
}

const sampleSize = 8 + 4 + 1

func batchSize(bt *Batch) int {
	n := 4 + 1 + 4 + 4 + 4 + 4 + len(bt.Samples)*sampleSize
	if bt.Reqs != nil {
		n += 4
		for i := range bt.Reqs {
			n += requestSize(&bt.Reqs[i])
		}
	} else {
		// Fluid batch: the modeled payload is charged to the wire even
		// though there is nothing to encode.
		n += int(bt.ByteSize)
	}
	return n
}

func appendBatch(b []byte, bt *Batch) []byte {
	b = putNode(b, bt.Origin)
	b = putBool(b, bt.Reqs != nil)
	if bt.Reqs != nil {
		b = putU32(b, uint32(len(bt.Reqs)))
		for i := range bt.Reqs {
			b = appendRequest(b, &bt.Reqs[i])
		}
	}
	b = putU32(b, bt.NumRead)
	b = putU32(b, bt.NumWrite)
	b = putU32(b, bt.ByteSize)
	b = putU32(b, uint32(len(bt.Samples)))
	for _, s := range bt.Samples {
		b = putU64(b, uint64(s.At))
		b = putU32(b, s.Count)
		b = putBool(b, s.Read)
	}
	return b
}

func readBatch(r *reader) *Batch {
	bt := &Batch{}
	bt.Origin = r.node()
	explicit := r.boolean()
	if explicit {
		n := r.count(requestFixedSize)
		bt.Reqs = make([]Request, n)
		for i := 0; i < n; i++ {
			readRequest(r, &bt.Reqs[i])
		}
	}
	bt.NumRead = r.u32()
	bt.NumWrite = r.u32()
	bt.ByteSize = r.u32()
	ns := r.count(sampleSize)
	if ns > 0 {
		bt.Samples = make([]ArrivalSample, ns)
		for i := 0; i < ns; i++ {
			bt.Samples[i].At = int64(r.u64())
			bt.Samples[i].Count = r.u32()
			bt.Samples[i].Read = r.boolean()
		}
	}
	return bt
}

// --- Proposal ---

// proposalSessionsFlag marks, in the encoded Round byte's high bit, that
// a trailing session-update section follows. Session updates are rare
// (registrations, expiries), so the common proposal pays zero bytes for
// the feature; LOT heights are single digits, far below the 7-bit limit.
const proposalSessionsFlag = 0x80

// proposalResolveFlag marks, in the encoded Round byte's next bit, a
// Resolve-flagged proposal (a sealed vnode's held state or an eviction
// tombstone). Like the sessions flag it costs the common proposal zero
// bytes; both flags are stripped from Round on decode.
const proposalResolveFlag = 0x40

// MemberUpdate flag byte: bit 0 is Leave, bit 1 is Resurrect (a
// cross-leaf sponsored join, void unless the leaf is still empty at
// apply time). The decoder rejects unknown bits like a malformed bool.
const (
	memberLeaveFlag     = 0x01
	memberResurrectFlag = 0x02
)

func (p *Proposal) WireSize() int {
	n := 1 + 8 + 1 + 2 + len(p.VNode) + 4 + 8
	n += 4 // batch count
	for _, bt := range p.Batches {
		n += batchSize(bt)
	}
	n += 4 + 5*len(p.Updates)
	n += 4 + 13*len(p.Leases)
	if len(p.Sessions) > 0 {
		n += 4 + 9*len(p.Sessions)
	}
	return n
}

func (p *Proposal) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindProposal))
	b = putU64(b, p.Cycle)
	round := p.Round
	if len(p.Sessions) > 0 {
		round |= proposalSessionsFlag
	}
	if p.Resolve {
		round |= proposalResolveFlag
	}
	b = putU8(b, round)
	b = putString(b, p.VNode)
	b = putNode(b, p.Origin)
	b = putU64(b, p.Num)
	b = putU32(b, uint32(len(p.Batches)))
	for _, bt := range p.Batches {
		b = appendBatch(b, bt)
	}
	b = putU32(b, uint32(len(p.Updates)))
	for _, u := range p.Updates {
		b = putNode(b, u.Node)
		var f uint8
		if u.Leave {
			f |= memberLeaveFlag
		}
		if u.Resurrect {
			f |= memberResurrectFlag
		}
		b = putU8(b, f)
	}
	b = putU32(b, uint32(len(p.Leases)))
	for _, l := range p.Leases {
		b = putU64(b, l.Key)
		b = putNode(b, l.Node)
		b = putBool(b, l.Release)
	}
	if len(p.Sessions) > 0 {
		b = putU32(b, uint32(len(p.Sessions)))
		for _, s := range p.Sessions {
			b = putU64(b, s.ID)
			b = putBool(b, s.Expire)
		}
	}
	return b
}

func readProposal(r *reader) *Proposal {
	p := &Proposal{}
	p.Cycle = r.u64()
	round := r.u8()
	hasSessions := round&proposalSessionsFlag != 0
	p.Resolve = round&proposalResolveFlag != 0
	p.Round = round &^ uint8(proposalSessionsFlag|proposalResolveFlag)
	p.VNode = r.str()
	p.Origin = r.node()
	p.Num = r.u64()
	nb := r.count(18)
	p.Batches = make([]*Batch, 0, nb)
	for i := 0; i < nb; i++ {
		p.Batches = append(p.Batches, readBatch(r))
	}
	nu := r.count(5)
	if nu > 0 {
		p.Updates = make([]MemberUpdate, nu)
		for i := 0; i < nu; i++ {
			p.Updates[i].Node = r.node()
			f := r.u8()
			if f&^(memberLeaveFlag|memberResurrectFlag) != 0 && r.err == nil {
				r.err = ErrBadBool
			}
			p.Updates[i].Leave = f&memberLeaveFlag != 0
			p.Updates[i].Resurrect = f&memberResurrectFlag != 0
		}
	}
	nl := r.count(13)
	if nl > 0 {
		p.Leases = make([]LeaseRequest, nl)
		for i := 0; i < nl; i++ {
			p.Leases[i].Key = r.u64()
			p.Leases[i].Node = r.node()
			p.Leases[i].Release = r.boolean()
		}
	}
	if hasSessions {
		ns := r.count(9)
		if ns == 0 && r.err == nil {
			// A flagged-but-empty section would re-encode flagless;
			// reject to keep decoding canonical.
			r.err = ErrTruncated
		}
		p.Sessions = make([]SessionUpdate, ns)
		for i := 0; i < ns; i++ {
			p.Sessions[i].ID = r.u64()
			p.Sessions[i].Expire = r.boolean()
		}
	}
	return p
}

// --- ProposalRequest ---

func (p *ProposalRequest) WireSize() int { return 1 + 8 + 1 + 2 + len(p.VNode) + 4 }

func (p *ProposalRequest) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindProposalRequest))
	b = putU64(b, p.Cycle)
	b = putU8(b, p.Round)
	b = putString(b, p.VNode)
	return putNode(b, p.From)
}

func readProposalRequest(r *reader) *ProposalRequest {
	p := &ProposalRequest{}
	p.Cycle = r.u64()
	p.Round = r.u8()
	p.VNode = r.str()
	p.From = r.node()
	return p
}

// --- Raft ---

func entrySize(e *RaftEntry) int {
	n := 8 + 1
	if e.Payload != nil {
		n += e.Payload.WireSize()
	}
	return n
}

func appendEntry(b []byte, e *RaftEntry) []byte {
	b = putU64(b, e.Term)
	if e.Payload == nil {
		return putBool(b, false)
	}
	b = putBool(b, true)
	return e.Payload.AppendTo(b)
}

func readEntry(r *reader) RaftEntry {
	var e RaftEntry
	e.Term = r.u64()
	if r.boolean() {
		if r.err != nil {
			return e
		}
		m, n, err := Decode(r.b[r.off:])
		if err != nil {
			r.err = err
			return e
		}
		r.off += n
		e.Payload = m
	}
	return e
}

func (m *RaftAppend) WireSize() int {
	n := 1 + 8 + 8 + 4 + 8 + 8 + 8 + 8 + 4
	for i := range m.Entries {
		n += entrySize(&m.Entries[i])
	}
	return n
}

func (m *RaftAppend) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindRaftAppend))
	b = putU64(b, m.Group)
	b = putU64(b, m.Term)
	b = putNode(b, m.Leader)
	b = putU64(b, m.PrevIndex)
	b = putU64(b, m.PrevTerm)
	b = putU64(b, m.Commit)
	b = putU64(b, m.Base)
	b = putU32(b, uint32(len(m.Entries)))
	for i := range m.Entries {
		b = appendEntry(b, &m.Entries[i])
	}
	return b
}

func readRaftAppend(r *reader) *RaftAppend {
	m := &RaftAppend{}
	m.Group = r.u64()
	m.Term = r.u64()
	m.Leader = r.node()
	m.PrevIndex = r.u64()
	m.PrevTerm = r.u64()
	m.Commit = r.u64()
	m.Base = r.u64()
	n := r.count(9)
	for i := 0; i < n && r.err == nil; i++ {
		m.Entries = append(m.Entries, readEntry(r))
	}
	return m
}

func (m *RaftAppendReply) WireSize() int { return 1 + 8 + 8 + 4 + 1 + 8 }

func (m *RaftAppendReply) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindRaftAppendReply))
	b = putU64(b, m.Group)
	b = putU64(b, m.Term)
	b = putNode(b, m.From)
	b = putBool(b, m.Success)
	return putU64(b, m.Match)
}

func readRaftAppendReply(r *reader) *RaftAppendReply {
	m := &RaftAppendReply{}
	m.Group = r.u64()
	m.Term = r.u64()
	m.From = r.node()
	m.Success = r.boolean()
	m.Match = r.u64()
	return m
}

func (m *RaftVote) WireSize() int { return 1 + 8 + 8 + 4 + 8 + 8 }

func (m *RaftVote) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindRaftVote))
	b = putU64(b, m.Group)
	b = putU64(b, m.Term)
	b = putNode(b, m.Candidate)
	b = putU64(b, m.LastIndex)
	return putU64(b, m.LastTerm)
}

func readRaftVote(r *reader) *RaftVote {
	m := &RaftVote{}
	m.Group = r.u64()
	m.Term = r.u64()
	m.Candidate = r.node()
	m.LastIndex = r.u64()
	m.LastTerm = r.u64()
	return m
}

func (m *RaftVoteReply) WireSize() int { return 1 + 8 + 8 + 4 + 1 }

func (m *RaftVoteReply) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindRaftVoteReply))
	b = putU64(b, m.Group)
	b = putU64(b, m.Term)
	b = putNode(b, m.From)
	return putBool(b, m.Granted)
}

func readRaftVoteReply(r *reader) *RaftVoteReply {
	m := &RaftVoteReply{}
	m.Group = r.u64()
	m.Term = r.u64()
	m.From = r.node()
	m.Granted = r.boolean()
	return m
}

// --- EPaxos ---

func depsSize(d []InstanceRef) int { return 4 + 12*len(d) }

func appendDeps(b []byte, d []InstanceRef) []byte {
	b = putU32(b, uint32(len(d)))
	for _, ref := range d {
		b = putNode(b, ref.Replica)
		b = putU64(b, ref.Instance)
	}
	return b
}

func readDeps(r *reader) []InstanceRef {
	n := r.count(12)
	if n == 0 {
		return nil
	}
	d := make([]InstanceRef, n)
	for i := 0; i < n; i++ {
		d[i].Replica = r.node()
		d[i].Instance = r.u64()
	}
	return d
}

func optBatchSize(bt *Batch) int {
	if bt == nil {
		return 1
	}
	return 1 + batchSize(bt)
}

func appendOptBatch(b []byte, bt *Batch) []byte {
	if bt == nil {
		return putBool(b, false)
	}
	b = putBool(b, true)
	return appendBatch(b, bt)
}

func readOptBatch(r *reader) *Batch {
	if !r.boolean() {
		return nil
	}
	return readBatch(r)
}

func (m *PreAccept) WireSize() int {
	return 1 + 4 + 8 + 8 + optBatchSize(m.Batch) + 8 + depsSize(m.Deps)
}

func (m *PreAccept) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindPreAccept))
	b = putNode(b, m.Replica)
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	b = appendOptBatch(b, m.Batch)
	b = putU64(b, m.Seq)
	return appendDeps(b, m.Deps)
}

func readPreAccept(r *reader) *PreAccept {
	m := &PreAccept{}
	m.Replica = r.node()
	m.Instance = r.u64()
	m.Ballot = r.u64()
	m.Batch = readOptBatch(r)
	m.Seq = r.u64()
	m.Deps = readDeps(r)
	return m
}

func (m *PreAcceptReply) WireSize() int {
	return 1 + 4 + 8 + 8 + 4 + 1 + 8 + depsSize(m.Deps)
}

func (m *PreAcceptReply) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindPreAcceptReply))
	b = putNode(b, m.Replica)
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	b = putNode(b, m.From)
	b = putBool(b, m.OK)
	b = putU64(b, m.Seq)
	return appendDeps(b, m.Deps)
}

func readPreAcceptReply(r *reader) *PreAcceptReply {
	m := &PreAcceptReply{}
	m.Replica = r.node()
	m.Instance = r.u64()
	m.Ballot = r.u64()
	m.From = r.node()
	m.OK = r.boolean()
	m.Seq = r.u64()
	m.Deps = readDeps(r)
	return m
}

func (m *Accept) WireSize() int { return 1 + 4 + 8 + 8 + 8 + depsSize(m.Deps) }

func (m *Accept) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindAccept))
	b = putNode(b, m.Replica)
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	b = putU64(b, m.Seq)
	return appendDeps(b, m.Deps)
}

func readAccept(r *reader) *Accept {
	m := &Accept{}
	m.Replica = r.node()
	m.Instance = r.u64()
	m.Ballot = r.u64()
	m.Seq = r.u64()
	m.Deps = readDeps(r)
	return m
}

func (m *AcceptReply) WireSize() int { return 1 + 4 + 8 + 8 + 4 + 1 }

func (m *AcceptReply) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindAcceptReply))
	b = putNode(b, m.Replica)
	b = putU64(b, m.Instance)
	b = putU64(b, m.Ballot)
	b = putNode(b, m.From)
	return putBool(b, m.OK)
}

func readAcceptReply(r *reader) *AcceptReply {
	m := &AcceptReply{}
	m.Replica = r.node()
	m.Instance = r.u64()
	m.Ballot = r.u64()
	m.From = r.node()
	m.OK = r.boolean()
	return m
}

func (m *Commit) WireSize() int {
	return 1 + 4 + 8 + optBatchSize(m.Batch) + 8 + depsSize(m.Deps)
}

func (m *Commit) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindCommit))
	b = putNode(b, m.Replica)
	b = putU64(b, m.Instance)
	b = appendOptBatch(b, m.Batch)
	b = putU64(b, m.Seq)
	return appendDeps(b, m.Deps)
}

func readCommit(r *reader) *Commit {
	m := &Commit{}
	m.Replica = r.node()
	m.Instance = r.u64()
	m.Batch = readOptBatch(r)
	m.Seq = r.u64()
	m.Deps = readDeps(r)
	return m
}

// --- Zab ---

func (m *ZabForward) WireSize() int { return 1 + 4 + optBatchSize(m.Batch) }

func (m *ZabForward) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindZabForward))
	b = putNode(b, m.From)
	return appendOptBatch(b, m.Batch)
}

func readZabForward(r *reader) *ZabForward {
	m := &ZabForward{}
	m.From = r.node()
	m.Batch = readOptBatch(r)
	return m
}

func (m *ZabPropose) WireSize() int { return 1 + 8 + 8 + optBatchSize(m.Batch) }

func (m *ZabPropose) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindZabPropose))
	b = putU64(b, m.Epoch)
	b = putU64(b, m.Zxid)
	return appendOptBatch(b, m.Batch)
}

func readZabPropose(r *reader) *ZabPropose {
	m := &ZabPropose{}
	m.Epoch = r.u64()
	m.Zxid = r.u64()
	m.Batch = readOptBatch(r)
	return m
}

func (m *ZabAck) WireSize() int { return 1 + 8 + 8 + 4 }

func (m *ZabAck) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindZabAck))
	b = putU64(b, m.Epoch)
	b = putU64(b, m.Zxid)
	return putNode(b, m.From)
}

func readZabAck(r *reader) *ZabAck {
	m := &ZabAck{}
	m.Epoch = r.u64()
	m.Zxid = r.u64()
	m.From = r.node()
	return m
}

func (m *ZabCommit) WireSize() int { return 1 + 8 + 8 }

func (m *ZabCommit) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindZabCommit))
	b = putU64(b, m.Epoch)
	return putU64(b, m.Zxid)
}

func readZabCommit(r *reader) *ZabCommit {
	m := &ZabCommit{}
	m.Epoch = r.u64()
	m.Zxid = r.u64()
	return m
}

func (m *ZabInform) WireSize() int { return 1 + 8 + 8 + optBatchSize(m.Batch) }

func (m *ZabInform) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindZabInform))
	b = putU64(b, m.Epoch)
	b = putU64(b, m.Zxid)
	return appendOptBatch(b, m.Batch)
}

func readZabInform(r *reader) *ZabInform {
	m := &ZabInform{}
	m.Epoch = r.u64()
	m.Zxid = r.u64()
	m.Batch = readOptBatch(r)
	return m
}

// --- Liveness and membership ---

func (m *Ping) WireSize() int { return 1 + 4 + 8 }

func (m *Ping) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindPing))
	b = putNode(b, m.From)
	return putU64(b, m.Seq)
}

func readPing(r *reader) *Ping {
	m := &Ping{}
	m.From = r.node()
	m.Seq = r.u64()
	return m
}

func (m *GroupClosed) WireSize() int { return 1 + 4 }

func (m *GroupClosed) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindGroupClosed))
	return putNode(b, m.Origin)
}

func readGroupClosed(r *reader) *GroupClosed {
	return &GroupClosed{Origin: r.node()}
}

func (m *JoinRequest) WireSize() int { return 1 + 4 }

func (m *JoinRequest) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindJoinRequest))
	return putNode(b, m.From)
}

func readJoinRequest(r *reader) *JoinRequest {
	return &JoinRequest{From: r.node()}
}

// --- Leaf eviction ---

func (m *LeafSeal) WireSize() int { return 1 + 8 + 2 + len(m.VNode) + 4 }

func (m *LeafSeal) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindLeafSeal))
	b = putU64(b, m.Cycle)
	b = putString(b, m.VNode)
	return putNode(b, m.Initiator)
}

func readLeafSeal(r *reader) *LeafSeal {
	m := &LeafSeal{}
	m.Cycle = r.u64()
	m.VNode = r.str()
	m.Initiator = r.node()
	return m
}

func (m *EvictQuery) WireSize() int { return 1 + 8 + 2 + len(m.VNode) + 4 }

func (m *EvictQuery) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindEvictQuery))
	b = putU64(b, m.Cycle)
	b = putString(b, m.VNode)
	return putNode(b, m.From)
}

func readEvictQuery(r *reader) *EvictQuery {
	m := &EvictQuery{}
	m.Cycle = r.u64()
	m.VNode = r.str()
	m.From = r.node()
	return m
}

func (m *EvictPromise) WireSize() int { return 1 + 8 + 2 + len(m.VNode) + 4 }

func (m *EvictPromise) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindEvictPromise))
	b = putU64(b, m.Cycle)
	b = putString(b, m.VNode)
	return putNode(b, m.From)
}

func readEvictPromise(r *reader) *EvictPromise {
	m := &EvictPromise{}
	m.Cycle = r.u64()
	m.VNode = r.str()
	m.From = r.node()
	return m
}

func (m *Evicted) WireSize() int { return 1 + 4 }

func (m *Evicted) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindEvicted))
	return putNode(b, m.From)
}

func readEvicted(r *reader) *Evicted {
	return &Evicted{From: r.node()}
}

func (m *JoinReply) WireSize() int {
	n := 1 + 4 + 8 + 4 + 4*len(m.Alive) + 4 + 4*len(m.Incarnations) + 4 + 4
	for i := range m.Snapshot {
		n += requestSize(&m.Snapshot[i])
	}
	if m.Snapshot == nil {
		n += int(m.StateBytes)
	}
	n += 4
	for i := range m.Sessions {
		n += sessionStateSize(&m.Sessions[i])
	}
	return n
}

const sessionStateFixed = 8 + 8 + 8 + 4 // id, low, lastActive, applied count

func sessionStateSize(s *SessionState) int {
	n := sessionStateFixed
	for i := range s.Applied {
		n += 8 + 4 + len(s.Applied[i].Val)
	}
	return n
}

func (m *JoinReply) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindJoinReply))
	b = putNode(b, m.From)
	b = putU64(b, m.StartCycle)
	b = putU32(b, uint32(len(m.Alive)))
	for _, id := range m.Alive {
		b = putNode(b, id)
	}
	b = putU32(b, uint32(len(m.Incarnations)))
	for _, inc := range m.Incarnations {
		b = putU32(b, inc)
	}
	b = putU32(b, uint32(len(m.Snapshot)))
	for i := range m.Snapshot {
		b = appendRequest(b, &m.Snapshot[i])
	}
	b = putU32(b, m.StateBytes)
	b = putU32(b, uint32(len(m.Sessions)))
	for i := range m.Sessions {
		s := &m.Sessions[i]
		b = putU64(b, s.ID)
		b = putU64(b, s.Low)
		b = putU64(b, s.LastActive)
		b = putU32(b, uint32(len(s.Applied)))
		for j := range s.Applied {
			b = putU64(b, s.Applied[j].Seq)
			b = putBytes(b, s.Applied[j].Val)
		}
	}
	return b
}

func readJoinReply(r *reader) *JoinReply {
	m := &JoinReply{}
	m.From = r.node()
	m.StartCycle = r.u64()
	na := r.count(4)
	if na > 0 {
		m.Alive = make([]NodeID, na)
		for i := 0; i < na; i++ {
			m.Alive[i] = r.node()
		}
	}
	ni := r.count(4)
	if ni > 0 {
		m.Incarnations = make([]uint32, ni)
		for i := 0; i < ni; i++ {
			m.Incarnations[i] = r.u32()
		}
	}
	ns := r.count(requestFixedSize)
	if ns > 0 {
		m.Snapshot = make([]Request, ns)
		for i := 0; i < ns; i++ {
			readRequest(r, &m.Snapshot[i])
		}
	}
	m.StateBytes = r.u32()
	nsess := r.count(sessionStateFixed)
	if nsess > 0 {
		m.Sessions = make([]SessionState, nsess)
		for i := 0; i < nsess; i++ {
			s := &m.Sessions[i]
			s.ID = r.u64()
			s.Low = r.u64()
			s.LastActive = r.u64()
			na := r.count(12)
			if na > 0 {
				s.Applied = make([]SessionReply, na)
				for j := 0; j < na; j++ {
					s.Applied[j].Seq = r.u64()
					s.Applied[j].Val = r.bytes()
				}
			}
		}
	}
	return m
}

func (m *Envelope) WireSize() int {
	n := 1 + 4 + 1
	if m.Payload != nil {
		n += m.Payload.WireSize()
	}
	return n
}

func (m *Envelope) AppendTo(b []byte) []byte {
	b = putU8(b, uint8(KindBroadcast))
	b = putNode(b, m.Origin)
	if m.Payload == nil {
		return putBool(b, false)
	}
	b = putBool(b, true)
	return m.Payload.AppendTo(b)
}

func readEnvelope(r *reader) *Envelope {
	m := &Envelope{}
	m.Origin = r.node()
	if r.boolean() && r.err == nil {
		p, n, err := Decode(r.b[r.off:])
		if err != nil {
			r.err = err
			return m
		}
		r.off += n
		m.Payload = p
	}
	return m
}

// Decode decodes one message from the front of b, returning the message
// and the number of bytes consumed.
func Decode(b []byte) (Message, int, error) {
	if len(b) == 0 {
		return nil, 0, ErrTruncated
	}
	r := &reader{b: b, off: 1}
	var m Message
	switch Kind(b[0]) {
	case KindProposal:
		m = readProposal(r)
	case KindProposalRequest:
		m = readProposalRequest(r)
	case KindRaftAppend:
		m = readRaftAppend(r)
	case KindRaftAppendReply:
		m = readRaftAppendReply(r)
	case KindRaftVote:
		m = readRaftVote(r)
	case KindRaftVoteReply:
		m = readRaftVoteReply(r)
	case KindPreAccept:
		m = readPreAccept(r)
	case KindPreAcceptReply:
		m = readPreAcceptReply(r)
	case KindAccept:
		m = readAccept(r)
	case KindAcceptReply:
		m = readAcceptReply(r)
	case KindCommit:
		m = readCommit(r)
	case KindZabForward:
		m = readZabForward(r)
	case KindZabPropose:
		m = readZabPropose(r)
	case KindZabAck:
		m = readZabAck(r)
	case KindZabCommit:
		m = readZabCommit(r)
	case KindZabInform:
		m = readZabInform(r)
	case KindPing:
		m = readPing(r)
	case KindGroupClosed:
		m = readGroupClosed(r)
	case KindJoinRequest:
		m = readJoinRequest(r)
	case KindJoinReply:
		m = readJoinReply(r)
	case KindBroadcast:
		m = readEnvelope(r)
	case KindLeafSeal:
		m = readLeafSeal(r)
	case KindEvictQuery:
		m = readEvictQuery(r)
	case KindEvictPromise:
		m = readEvictPromise(r)
	case KindEvicted:
		m = readEvicted(r)
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownKind, b[0])
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	return m, r.off, nil
}
