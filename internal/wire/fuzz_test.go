package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds is one representative message per kind, so the fuzzer starts
// from every decoder's happy path.
func fuzzSeeds() []Message {
	batch := &Batch{
		Origin:   1,
		Reqs:     []Request{{Client: 1, Seq: 2, Op: OpWrite, Key: 3, Val: []byte("12345678")}},
		NumWrite: 1,
		Samples:  []ArrivalSample{{At: 99, Count: 1}},
	}
	fluid := &Batch{Origin: 2, NumRead: 10, NumWrite: 5, ByteSize: 300,
		Samples: []ArrivalSample{{At: 7, Count: 15, Read: true}}}
	return []Message{
		&Proposal{Cycle: 7, Round: 2, VNode: "1.2", Origin: 3, Num: 42,
			Batches: []*Batch{batch, fluid},
			Updates: []MemberUpdate{{Node: 4, Leave: true}},
			Leases:  []LeaseRequest{{Key: 9, Node: 1}}},
		&ProposalRequest{Cycle: 7, Round: 2, VNode: "1.2", From: 5},
		&RaftAppend{Group: 1, Term: 2, Leader: 0, PrevIndex: 3, PrevTerm: 1, Commit: 2, Base: 1,
			Entries: []RaftEntry{{Term: 2, Payload: &Ping{From: 1, Seq: 9}}, {Term: 2}}},
		&RaftAppendReply{Group: 1, Term: 2, From: 1, Success: true, Match: 3},
		&RaftVote{Group: 1, Term: 3, Candidate: 2, LastIndex: 5, LastTerm: 2},
		&RaftVoteReply{Group: 1, Term: 3, From: 0, Granted: true},
		&PreAccept{Replica: 1, Instance: 2, Ballot: 3, Batch: batch, Seq: 4,
			Deps: []InstanceRef{{Replica: 0, Instance: 1}}},
		&PreAcceptReply{Replica: 1, Instance: 2, Ballot: 3, From: 2, OK: true, Seq: 4,
			Deps: []InstanceRef{{Replica: 2, Instance: 9}}},
		&Accept{Replica: 1, Instance: 2, Ballot: 3, Seq: 4},
		&AcceptReply{Replica: 1, Instance: 2, Ballot: 3, From: 0, OK: false},
		&Commit{Replica: 1, Instance: 2, Batch: fluid, Seq: 3},
		&ZabForward{From: 2, Batch: batch},
		&ZabPropose{Epoch: 1, Zxid: 2, Batch: fluid},
		&ZabAck{Epoch: 1, Zxid: 2, From: 3},
		&ZabCommit{Epoch: 1, Zxid: 2},
		&ZabInform{Epoch: 1, Zxid: 2, Batch: batch},
		&Ping{From: 1, Seq: 2},
		&GroupClosed{Origin: 3},
		&JoinRequest{From: 4},
		&JoinReply{From: 1, StartCycle: 9, Alive: []NodeID{0, 1, 2}, Incarnations: []uint32{0, 1, 0},
			Snapshot: []Request{{Client: 1, Seq: 1, Op: OpWrite, Key: 2, Val: []byte("v")}}},
		&Envelope{Origin: 2, Payload: &Ping{From: 2, Seq: 5}},
		&Proposal{Cycle: 11, Round: 3, VNode: "1", Origin: NoNode, Num: 0, Resolve: true,
			Updates: []MemberUpdate{{Node: 6, Leave: true}, {Node: 7, Leave: true}}},
		&LeafSeal{Cycle: 11, VNode: "1.2", Initiator: 3},
		&EvictQuery{Cycle: 11, VNode: "1.2", From: 4},
		&EvictPromise{Cycle: 11, VNode: "1.2", From: 5},
		&Evicted{From: 6},
	}
}

// FuzzCodec exercises the wire codec against arbitrary bytes: decoding
// must never panic or over-read, and any successfully decoded message
// must re-encode to exactly the bytes consumed (the codec is canonical),
// then decode again to the same encoding (round-trip fixed point).
func FuzzCodec(f *testing.F) {
	for _, m := range fuzzSeeds() {
		f.Add(m.AppendTo(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		enc := m.AppendTo(nil)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n consumed %x\n re-enc   %x", data[:n], enc)
		}
		m2, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if enc2 := m2.AppendTo(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not a fixed point")
		}
	})
}

// FuzzClientCodec does the same for the binary client protocol frames,
// v1 and v2: decoding arbitrary payloads must never panic, and every
// successfully decoded frame must re-encode canonically.
func FuzzClientCodec(f *testing.F) {
	for _, q := range []ClientRequest{
		{ID: 1, Op: OpWrite, Key: 7, Val: []byte("hello")},
		{ID: 2, Op: OpRead, Key: 9},
	} {
		frame := AppendClientRequest(nil, &q)
		f.Add(frame[4:], true, false)
	}
	for _, resp := range []ClientResponse{
		{ID: 1, Status: ClientStatusOK, Val: []byte("v")},
		{ID: 2, Status: ClientStatusNil},
	} {
		frame := AppendClientResponse(nil, &resp)
		f.Add(frame[4:], false, false)
	}
	for _, q := range v2RequestsForTest() {
		frame := AppendClientRequestV2(nil, &q)
		f.Add(frame[4:], true, true)
	}
	for _, resp := range v2ResponsesForTest() {
		frame := AppendClientResponseV2(nil, &resp)
		f.Add(frame[4:], false, true)
	}
	for _, q := range v3RequestsForTest() {
		frame := AppendClientRequestV3(nil, &q)
		f.Add(frame[4:], true, true)
	}
	for _, resp := range v3ResponsesForTest() {
		frame := AppendClientResponseV3(nil, &resp)
		f.Add(frame[4:], false, true)
	}
	f.Fuzz(func(t *testing.T, payload []byte, asRequest, v2 bool) {
		switch {
		case asRequest && !v2:
			q, err := ParseClientRequest(payload)
			if err != nil {
				return
			}
			frame := AppendClientRequest(nil, &q)
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("request re-encode mismatch")
			}
		case !asRequest && !v2:
			resp, err := ParseClientResponse(payload)
			if err != nil {
				return
			}
			frame := AppendClientResponse(nil, &resp)
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("response re-encode mismatch")
			}
		case asRequest && v2:
			// v3 is a strict superset of v2: any payload the v2 parser
			// accepts must parse identically under v3 and re-encode to the
			// same bytes (the cross-version round trip), and v3-only kinds
			// must still be canonical under decode∘encode.
			var q3 ClientRequestV2
			err3 := ParseClientRequestV3Into(payload, &q3, nil)
			q, err := ParseClientRequestV2(payload)
			if err == nil {
				if err3 != nil {
					t.Fatalf("v2-accepted request rejected by v3: %v", err3)
				}
				frame := AppendClientRequestV2(nil, &q)
				if !bytes.Equal(frame[4:], payload) {
					t.Fatalf("v2 request re-encode mismatch")
				}
				if v3 := AppendClientRequestV3(nil, &q3); !bytes.Equal(v3, frame) {
					t.Fatalf("v2<->v3 request cross-version encode mismatch")
				}
			} else if err3 == nil {
				if !q3.Watch && !q3.Unwatch && !q3.Txn {
					t.Fatalf("v3 accepted a v2-shape frame v2 rejected")
				}
				frame := AppendClientRequestV3(nil, &q3)
				if !bytes.Equal(frame[4:], payload) {
					t.Fatalf("v3 request re-encode mismatch")
				}
			}
		default:
			resp3, err3 := ParseClientResponseV3(payload)
			resp, err := ParseClientResponseV2(payload)
			if err == nil {
				if err3 != nil {
					t.Fatalf("v2-accepted response rejected by v3: %v", err3)
				}
				frame := AppendClientResponseV2(nil, &resp)
				if !bytes.Equal(frame[4:], payload) {
					t.Fatalf("v2 response re-encode mismatch")
				}
				if v3 := AppendClientResponseV3(nil, &resp3); !bytes.Equal(v3, frame) {
					t.Fatalf("v2<->v3 response cross-version encode mismatch")
				}
			} else if err3 == nil {
				if !resp3.Event {
					t.Fatalf("v3 accepted a v2-shape response v2 rejected")
				}
				frame := AppendClientResponseV3(nil, &resp3)
				if !bytes.Equal(frame[4:], payload) {
					t.Fatalf("v3 response re-encode mismatch")
				}
			}
		}
	})
}

// TestCodecRoundTripSeeds pins the round-trip property for every seed
// message even when the fuzzer is not running (go test -run).
func TestCodecRoundTripSeeds(t *testing.T) {
	for _, m := range fuzzSeeds() {
		enc := m.AppendTo(nil)
		if got := m.WireSize(); got != wireLessFluid(m, len(enc)) {
			// WireSize includes modeled fluid bytes that are not encoded;
			// wireLessFluid adjusts, so any other mismatch is a bug.
			t.Errorf("%T: WireSize %d, encoded %d", m, m.WireSize(), len(enc))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if n != len(enc) {
			t.Fatalf("%T: consumed %d of %d", m, n, len(enc))
		}
		if enc2 := got.AppendTo(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("%T: round trip changed encoding", m)
		}
	}
}

// wireLessFluid returns what WireSize should report for m given its
// encoded length: encoded bytes plus the modeled ByteSize of any fluid
// batches (which contribute wire cost but no encoded bytes).
func wireLessFluid(m Message, encoded int) int {
	fluid := 0
	var walk func(b *Batch)
	walk = func(b *Batch) {
		if b != nil && b.Reqs == nil {
			fluid += int(b.ByteSize)
		}
	}
	switch v := m.(type) {
	case *Proposal:
		for _, b := range v.Batches {
			walk(b)
		}
	case *PreAccept:
		walk(v.Batch)
	case *Commit:
		walk(v.Batch)
	case *ZabForward:
		walk(v.Batch)
	case *ZabPropose:
		walk(v.Batch)
	case *ZabInform:
		walk(v.Batch)
	}
	return encoded + fluid
}
