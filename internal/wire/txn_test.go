package wire

import (
	"bytes"
	"testing"
)

func txnsForTest() []Txn {
	return []Txn{
		{Ops: []TxnOp{{Op: OpWrite, Key: 1, Val: []byte("v")}}},
		{Guards: []TxnGuard{{Kind: GuardValueEq, Key: 7, Val: nil}},
			Ops: []TxnOp{{Op: OpWrite, Key: 7, Val: []byte("me"), Ephemeral: true}}},
		{Guards: []TxnGuard{{Kind: GuardValueEq, Key: 7, Val: []byte("me")}},
			Ops: []TxnOp{{Op: OpDelete, Key: 7}}},
		{Guards: []TxnGuard{
			{Kind: GuardCycleLE, Key: 3, Cycle: 41},
			{Kind: GuardValueEq, Key: 4, Val: []byte{}},
		}, Ops: []TxnOp{
			{Op: OpWrite, Key: 3, Val: []byte("a")},
			{Op: OpWrite, Key: 4, Val: nil},
			{Op: OpDelete, Key: ^uint64(0)},
		}},
	}
}

func TestTxnRoundTrip(t *testing.T) {
	for i, txn := range txnsForTest() {
		enc := AppendTxn(nil, &txn)
		if len(enc) != TxnSize(&txn) {
			t.Fatalf("txn %d: TxnSize %d, encoded %d", i, TxnSize(&txn), len(enc))
		}
		got, err := ParseTxn(enc)
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if re := AppendTxn(nil, &got); !bytes.Equal(re, enc) {
			t.Fatalf("txn %d: re-encode mismatch", i)
		}
		if len(got.Guards) != len(txn.Guards) || len(got.Ops) != len(txn.Ops) {
			t.Fatalf("txn %d: shape changed: %+v", i, got)
		}
		for j := range txn.Guards {
			w, g := txn.Guards[j], got.Guards[j]
			if g.Kind != w.Kind || g.Key != w.Key || g.Cycle != w.Cycle ||
				!bytes.Equal(g.Val, w.Val) || (g.Val == nil) != (w.Val == nil) {
				t.Fatalf("txn %d guard %d: got %+v want %+v", i, j, g, w)
			}
		}
		for j := range txn.Ops {
			w, g := txn.Ops[j], got.Ops[j]
			if g.Op != w.Op || g.Key != w.Key || g.Ephemeral != w.Ephemeral || !bytes.Equal(g.Val, w.Val) {
				t.Fatalf("txn %d op %d: got %+v want %+v", i, j, g, w)
			}
		}
	}
}

func TestTxnErrors(t *testing.T) {
	// Empty txn rejected.
	empty := Txn{}
	if _, err := ParseTxn(AppendTxn(nil, &empty)); err == nil {
		t.Fatal("empty txn parsed")
	}
	// Read ops are not transactions.
	read := Txn{Ops: []TxnOp{{Op: OpRead, Key: 1}}}
	if _, err := ParseTxn(AppendTxn(nil, &read)); err == nil {
		t.Fatal("txn read op parsed")
	}
	// Ephemeral delete is meaningless.
	ed := Txn{Ops: []TxnOp{{Op: OpDelete, Key: 1, Ephemeral: true}}}
	if _, err := ParseTxn(AppendTxn(nil, &ed)); err == nil {
		t.Fatal("ephemeral delete parsed")
	}
	// Unknown guard kind.
	bg := Txn{Guards: []TxnGuard{{Kind: 9, Key: 1}}, Ops: []TxnOp{{Op: OpWrite, Key: 1}}}
	if _, err := ParseTxn(AppendTxn(nil, &bg)); err == nil {
		t.Fatal("unknown guard kind parsed")
	}
	// Truncation and trailing garbage.
	ok := Txn{Ops: []TxnOp{{Op: OpWrite, Key: 1, Val: []byte("v")}}}
	enc := AppendTxn(nil, &ok)
	if _, err := ParseTxn(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated txn parsed")
	}
	if _, err := ParseTxn(append(enc, 0)); err == nil {
		t.Fatal("oversized txn parsed")
	}
	// Guard count over the cap.
	big := Txn{Ops: []TxnOp{{Op: OpWrite, Key: 1}}}
	for i := 0; i < MaxTxnGuards+1; i++ {
		big.Guards = append(big.Guards, TxnGuard{Kind: GuardCycleLE, Key: uint64(i)})
	}
	if _, err := ParseTxn(AppendTxn(nil, &big)); err == nil {
		t.Fatal("oversized guard list parsed")
	}
}

func TestTxnResultRoundTrip(t *testing.T) {
	for _, res := range []TxnResult{
		{Committed: true, Failed: TxnFailedNone},
		{Committed: false, Failed: 0},
		{Committed: false, Failed: 3},
	} {
		enc := AppendTxnResult(nil, res)
		got, err := ParseTxnResult(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got != res {
			t.Fatalf("round trip: got %+v want %+v", got, res)
		}
	}
	// A "committed" result naming a failed guard is inconsistent.
	bad := AppendTxnResult(nil, TxnResult{Committed: true, Failed: 2})
	if _, err := ParseTxnResult(bad); err == nil {
		t.Fatal("inconsistent txn result parsed")
	}
}

func v3RequestsForTest() []ClientRequestV2 {
	return []ClientRequestV2{
		{ID: 20, Watch: true, WatchID: 1, WatchKey: 7, PrefixBits: 64},
		{ID: 21, Watch: true, WatchID: 2, WatchKey: 0, PrefixBits: 0, SinceCycle: 99},
		{ID: 22, Watch: true, WatchID: 3, WatchKey: 0xAB00000000000000, PrefixBits: 8},
		{ID: 23, Unwatch: true, WatchID: 2},
		{ID: 24, Txn: true, Session: 5 | SessionIDBit, Seq: 3,
			TxnGuards: []TxnGuard{{Kind: GuardValueEq, Key: 7}},
			TxnOps:    []TxnOp{{Op: OpWrite, Key: 7, Val: []byte("me"), Ephemeral: true}}},
		{ID: 25, Txn: true,
			TxnGuards: []TxnGuard{{Kind: GuardCycleLE, Key: 1, Cycle: 12}},
			TxnOps:    []TxnOp{{Op: OpWrite, Key: 1, Val: []byte("x")}, {Op: OpDelete, Key: 2}}},
	}
}

func v3ResponsesForTest() []ClientResponseV2 {
	return []ClientResponseV2{
		{ID: 1, Event: true, Cycle: 40, Events: []Event{
			{Op: OpWrite, Key: 7, Val: []byte("v")},
			{Op: OpDelete, Key: 9},
		}},
		{ID: 2, Event: true, Cycle: 41, Overflow: true},
	}
}

func TestClientV3RequestRoundTrip(t *testing.T) {
	for _, q := range append(v2RequestsForTest(), v3RequestsForTest()...) {
		frame := AppendClientRequestV3(nil, &q)
		n, err := ClientFrameLen([4]byte(frame[:4]))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame)-4 {
			t.Fatalf("frame length %d, payload %d", n, len(frame)-4)
		}
		var got ClientRequestV2
		if err := ParseClientRequestV3Into(frame[4:], &got, nil); err != nil {
			t.Fatalf("id %d: %v", q.ID, err)
		}
		if enc := AppendClientRequestV3(nil, &got); !bytes.Equal(enc, frame) {
			t.Fatalf("id %d: re-encode mismatch", q.ID)
		}
		if got.ID != q.ID || got.Watch != q.Watch || got.Unwatch != q.Unwatch ||
			got.Txn != q.Txn || got.WatchID != q.WatchID || got.WatchKey != q.WatchKey ||
			got.PrefixBits != q.PrefixBits || got.SinceCycle != q.SinceCycle ||
			got.Session != q.Session || got.Seq != q.Seq ||
			len(got.TxnGuards) != len(q.TxnGuards) || len(got.TxnOps) != len(q.TxnOps) {
			t.Fatalf("round trip: got %+v want %+v", got, q)
		}
	}
}

func TestClientV3ResponseRoundTrip(t *testing.T) {
	for _, resp := range append(v2ResponsesForTest(), v3ResponsesForTest()...) {
		frame := AppendClientResponseV3(nil, &resp)
		got, err := ParseClientResponseV3(frame[4:])
		if err != nil {
			t.Fatalf("id %d: %v", resp.ID, err)
		}
		if enc := AppendClientResponseV3(nil, &got); !bytes.Equal(enc, frame) {
			t.Fatalf("id %d: re-encode mismatch", resp.ID)
		}
		if got.ID != resp.ID || got.Event != resp.Event || got.Overflow != resp.Overflow ||
			got.Cycle != resp.Cycle || len(got.Events) != len(resp.Events) {
			t.Fatalf("round trip: got %+v want %+v", got, resp)
		}
		for i := range resp.Events {
			w, g := resp.Events[i], got.Events[i]
			if g.Op != w.Op || g.Key != w.Key || !bytes.Equal(g.Val, w.Val) {
				t.Fatalf("event %d: got %+v want %+v", i, g, w)
			}
		}
	}
}

// TestClientCrossVersionV2V3 pins the superset property: every v2 frame
// is byte-identical under the v3 encoder and parses identically under
// the v3 parser, while v3-only kinds stay rejected by the v2 parser.
func TestClientCrossVersionV2V3(t *testing.T) {
	for _, q := range v2RequestsForTest() {
		v2f := AppendClientRequestV2(nil, &q)
		v3f := AppendClientRequestV3(nil, &q)
		if !bytes.Equal(v2f, v3f) {
			t.Fatalf("id %d: v2/v3 request encodings differ", q.ID)
		}
		var got ClientRequestV2
		if err := ParseClientRequestV3Into(v2f[4:], &got, nil); err != nil {
			t.Fatalf("id %d: v3 parser rejected v2 frame: %v", q.ID, err)
		}
		if re := AppendClientRequestV3(nil, &got); !bytes.Equal(re, v2f) {
			t.Fatalf("id %d: cross-version request round trip changed encoding", q.ID)
		}
	}
	for _, resp := range v2ResponsesForTest() {
		v2f := AppendClientResponseV2(nil, &resp)
		v3f := AppendClientResponseV3(nil, &resp)
		if !bytes.Equal(v2f, v3f) {
			t.Fatalf("id %d: v2/v3 response encodings differ", resp.ID)
		}
		got, err := ParseClientResponseV3(v2f[4:])
		if err != nil {
			t.Fatalf("id %d: v3 parser rejected v2 frame: %v", resp.ID, err)
		}
		if re := AppendClientResponseV3(nil, &got); !bytes.Equal(re, v2f) {
			t.Fatalf("id %d: cross-version response round trip changed encoding", resp.ID)
		}
	}
	// v3-only request kinds must stay invisible to v2.
	for _, q := range v3RequestsForTest() {
		frame := AppendClientRequestV3(nil, &q)
		if _, err := ParseClientRequestV2(frame[4:]); err == nil {
			t.Fatalf("id %d: v2 parser accepted a v3-only frame", q.ID)
		}
	}
	for _, resp := range v3ResponsesForTest() {
		frame := AppendClientResponseV3(nil, &resp)
		if _, err := ParseClientResponseV2(frame[4:]); err == nil {
			t.Fatalf("id %d: v2 parser accepted a v3-only response", resp.ID)
		}
	}
}

func TestClientV3FrameErrors(t *testing.T) {
	// Prefix bits beyond 64.
	q := ClientRequestV2{ID: 1, Watch: true, WatchID: 1, WatchKey: 2, PrefixBits: 65}
	frame := AppendClientRequestV3(nil, &q)
	var got ClientRequestV2
	if err := ParseClientRequestV3Into(frame[4:], &got, nil); err == nil {
		t.Fatal("watch with 65 prefix bits parsed")
	}
	// Txn frame with a malformed session ID.
	tq := ClientRequestV2{ID: 1, Txn: true, Session: 5, Seq: 1,
		TxnOps: []TxnOp{{Op: OpWrite, Key: 1}}}
	frame = AppendClientRequestV3(nil, &tq)
	if err := ParseClientRequestV3Into(frame[4:], &got, nil); err == nil {
		t.Fatal("txn with non-session ID parsed")
	}
	// Trailing garbage rejected on v3 kinds.
	wq := ClientRequestV2{ID: 1, Watch: true, WatchID: 1, WatchKey: 2, PrefixBits: 64}
	frame = AppendClientRequestV3(nil, &wq)
	if err := ParseClientRequestV3Into(append(frame[4:], 0), &got, nil); err == nil {
		t.Fatal("oversized v3 request parsed")
	}
	// Unknown event flags rejected.
	er := ClientResponseV2{ID: 1, Event: true, Cycle: 3}
	frame = AppendClientResponseV3(nil, &er)
	frame[4+8+1] = 0x80
	if _, err := ParseClientResponseV3(frame[4:]); err == nil {
		t.Fatal("unknown event flags parsed")
	}
	// v3 magic shares the v1/v2 prefix and bumps the version byte.
	if ClientMagicV3[0] != ClientMagic[0] || ClientMagicV3[1] != ClientMagic[1] ||
		ClientMagicV3[2] != ClientMagic[2] || ClientMagicV3[3] != 0x03 {
		t.Fatal("v3 magic must share the prefix and differ in the version byte")
	}
}
