package harness

import "time"

// The paper's throughput methodology (§8.1): raise the offered rate
// until median completion time crosses a threshold (10 ms in the single
// datacenter; 1.5× the unloaded latency across datacenters), then report
// the highest sustainable rate — and, for completion-time figures, the
// median at 70% of that maximum.

// SingleDCThreshold is the paper's 10ms saturation criterion.
const SingleDCThreshold = 10 * time.Millisecond

// acceptable reports whether a run kept up with its offered load.
func acceptable(r Result, threshold time.Duration) bool {
	if r.Median <= 0 || r.Median > threshold {
		return false
	}
	// Falling visibly behind the offered rate also means saturation,
	// whatever the median says.
	return r.Throughput >= 0.8*r.Offered
}

// Search is the saturation-point search over one deployment: geometric
// ramp from Start, then bisection, against the Threshold saturation
// criterion. The zero value of every optional field selects the
// methodology default.
type Search struct {
	Spec Spec
	// Threshold is the saturation criterion (default SingleDCThreshold).
	Threshold time.Duration
	// Start is the first offered rate (default 25k/s).
	Start float64
	// Bisections refines the ramp's bracket; 4 (the default) gives ~6%
	// resolution.
	Bisections int
}

// Max returns the last sustainable result of the search.
func (s Search) Max() Result {
	threshold := s.Threshold
	if threshold <= 0 {
		threshold = SingleDCThreshold
	}
	rate := s.Start
	if rate <= 0 {
		rate = 25_000
	}
	bisections := s.Bisections
	if bisections <= 0 {
		bisections = 4
	}
	lo := Result{}
	var hi float64
	for i := 0; i < 24; i++ {
		r := Run(s.Spec, rate)
		if acceptable(r, threshold) {
			lo = r
			rate *= 2
			continue
		}
		hi = rate
		break
	}
	if hi == 0 || lo.Offered == 0 {
		return lo
	}
	for i := 0; i < bisections; i++ {
		mid := (lo.Offered + hi) / 2
		r := Run(s.Spec, mid)
		if acceptable(r, threshold) {
			lo = r
		} else {
			hi = mid
		}
	}
	return lo
}

// At70 reruns the deployment at 70% of the given maximum and returns
// that run (the paper's representative operating point for
// completion-time reporting).
func (s Search) At70(max Result) Result {
	return Run(s.Spec, 0.7*max.Offered)
}

// CurvePoint is one (throughput, latency) sample of a latency curve.
type CurvePoint struct {
	Offered    float64
	Throughput float64
	Median     time.Duration
}

// Sweep is the latency-curve sweep mirroring the paper's Figures 5–7:
// offered rates grow geometrically from Start by Factor, recording
// (throughput, median completion) points until the median exceeds Stop,
// the system falls behind, or MaxPoints samples are taken.
type Sweep struct {
	Spec Spec
	// Start is the first offered rate (default 25k/s).
	Start float64
	// Factor is the geometric rate multiplier (default 2).
	Factor float64
	// Stop ends the sweep once the median completion exceeds it.
	Stop time.Duration
	// MaxPoints bounds the curve length (default 12).
	MaxPoints int
}

// Curve runs the sweep and returns its samples.
func (s Sweep) Curve() []CurvePoint {
	rate := s.Start
	if rate <= 0 {
		rate = 25_000
	}
	factor := s.Factor
	if factor <= 1 {
		factor = 2
	}
	maxPoints := s.MaxPoints
	if maxPoints <= 0 {
		maxPoints = 12
	}
	var out []CurvePoint
	for i := 0; i < maxPoints; i++ {
		r := Run(s.Spec, rate)
		out = append(out, CurvePoint{Offered: rate, Throughput: r.Throughput, Median: r.Median})
		if r.Median > s.Stop || r.Median == 0 || r.Throughput < 0.8*rate {
			break
		}
		rate *= factor
	}
	return out
}

// Knee returns the point where median first exceeded limit (the paper's
// vertical 1.5×-base-latency lines in Figure 6), or the last point.
func Knee(curve []CurvePoint, limit time.Duration) CurvePoint {
	for _, p := range curve {
		if p.Median > limit {
			return p
		}
	}
	if len(curve) == 0 {
		return CurvePoint{}
	}
	return curve[len(curve)-1]
}
