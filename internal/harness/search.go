package harness

import "time"

// The paper's throughput methodology (§8.1): raise the offered rate
// until median completion time crosses a threshold (10 ms in the single
// datacenter; 1.5× the unloaded latency across datacenters), then report
// the highest sustainable rate — and, for completion-time figures, the
// median at 70% of that maximum.

// SingleDCThreshold is the paper's 10ms saturation criterion.
const SingleDCThreshold = 10 * time.Millisecond

// acceptable reports whether a run kept up with its offered load.
func acceptable(r Result, threshold time.Duration) bool {
	if r.Median <= 0 || r.Median > threshold {
		return false
	}
	// Falling visibly behind the offered rate also means saturation,
	// whatever the median says.
	return r.Throughput >= 0.8*r.Offered
}

// MaxThroughput searches for the saturation point of a deployment:
// geometric ramp from start, then bisection. It returns the last
// sustainable result. bisections=4 gives ~6% resolution.
func MaxThroughput(spec Spec, threshold time.Duration, start float64, bisections int) Result {
	if start <= 0 {
		start = 25_000
	}
	lo := Result{}
	rate := start
	var hi float64
	for i := 0; i < 24; i++ {
		r := Run(spec, rate)
		if acceptable(r, threshold) {
			lo = r
			rate *= 2
			continue
		}
		hi = rate
		break
	}
	if hi == 0 || lo.Offered == 0 {
		return lo
	}
	for i := 0; i < bisections; i++ {
		mid := (lo.Offered + hi) / 2
		r := Run(spec, mid)
		if acceptable(r, threshold) {
			lo = r
		} else {
			hi = mid
		}
	}
	return lo
}

// CompletionAt70 reruns the deployment at 70% of the given maximum and
// returns that run (the paper's representative operating point for
// completion-time reporting).
func CompletionAt70(spec Spec, max Result) Result {
	return Run(spec, 0.7*max.Offered)
}

// CurvePoint is one (throughput, latency) sample of a latency curve.
type CurvePoint struct {
	Offered    float64
	Throughput float64
	Median     time.Duration
}

// LatencyCurve sweeps offered rates geometrically from start, recording
// (throughput, median completion) points until median exceeds stop or
// the system falls behind, mirroring the paper's Figures 5–7.
func LatencyCurve(spec Spec, start, factor float64, stop time.Duration, maxPoints int) []CurvePoint {
	var out []CurvePoint
	rate := start
	for i := 0; i < maxPoints; i++ {
		r := Run(spec, rate)
		out = append(out, CurvePoint{Offered: rate, Throughput: r.Throughput, Median: r.Median})
		if r.Median > stop || r.Median == 0 || r.Throughput < 0.8*rate {
			break
		}
		rate *= factor
	}
	return out
}

// Knee returns the point where median first exceeded limit (the paper's
// vertical 1.5×-base-latency lines in Figure 6), or the last point.
func Knee(curve []CurvePoint, limit time.Duration) CurvePoint {
	for _, p := range curve {
		if p.Median > limit {
			return p
		}
	}
	if len(curve) == 0 {
		return CurvePoint{}
	}
	return curve[len(curve)-1]
}
