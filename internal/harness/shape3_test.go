package harness

import (
	"testing"
	"time"
)

func TestShapeFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check")
	}
	warm, meas := 300*time.Millisecond, 700*time.Millisecond
	zk := MaxThroughput(Spec{System: Zab, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		Seed: 5, Warmup: warm, Measure: meas}, SingleDCThreshold, 25_000, 3)
	zkc := MaxThroughput(Spec{System: ZKCanopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		Seed: 5, Warmup: warm, Measure: meas}, SingleDCThreshold, 25_000, 3)
	t.Logf("fig5 27n: ZooKeeper=%.0f ZKCanopus=%.0f ratio=%.1fx", zk.Throughput, zkc.Throughput, zkc.Throughput/zk.Throughput)
	if zkc.Throughput < 5*zk.Throughput {
		t.Errorf("ZKCanopus should be >>8x ZooKeeper at 27 nodes read-heavy")
	}
}
