package harness

import (
	"testing"
	"time"
)

func TestShapeFig5(t *testing.T) {
	warm, meas := windows(300*time.Millisecond, 700*time.Millisecond)
	if testing.Short() {
		// The saturation search needs full windows to bind on the 10ms
		// criterion; under -short just pin both systems at fixed rates on
		// the right side of the gap and check they keep up.
		zk := Run(Spec{System: Zab, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
			Seed: 5, Warmup: warm, Measure: meas}, 150_000)
		zkc := Run(Spec{System: ZKCanopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
			Seed: 5, Warmup: warm, Measure: meas}, 900_000)
		t.Logf("fig5 short: ZooKeeper@150k=%.0f ZKCanopus@900k=%.0f", zk.Throughput, zkc.Throughput)
		if zk.Throughput < 120_000 {
			t.Errorf("ZooKeeper fell behind a 150k offered load: %.0f", zk.Throughput)
		}
		if zkc.Throughput < 720_000 {
			t.Errorf("ZKCanopus fell behind a 900k offered load: %.0f", zkc.Throughput)
		}
		return
	}
	zk := Search{Spec: Spec{System: Zab, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		Seed: 5, Warmup: warm, Measure: meas}, Bisections: 3}.Max()
	zkc := Search{Spec: Spec{System: ZKCanopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		Seed: 5, Warmup: warm, Measure: meas}, Bisections: 3}.Max()
	t.Logf("fig5 27n: ZooKeeper=%.0f ZKCanopus=%.0f ratio=%.1fx", zk.Throughput, zkc.Throughput, zkc.Throughput/zk.Throughput)
	if zkc.Throughput < 5*zk.Throughput {
		t.Errorf("ZKCanopus should be >>8x ZooKeeper at 27 nodes read-heavy")
	}
}
