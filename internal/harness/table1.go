package harness

import (
	"fmt"
	"strings"
	"time"
)

// Table 1 of the paper: measured latencies (ms, round-trip) between the
// seven EC2 regions used in the multi-datacenter evaluation — Ireland,
// California, Virginia, Tokyo, Oregon, Sydney, Frankfurt. The diagonal
// is the intra-datacenter latency.
var (
	// Table1Regions names the datacenters in matrix order.
	Table1Regions = []string{"IR", "CA", "VA", "TK", "OR", "SY", "FF"}

	table1ms = [7][7]float64{
		{0.2, 133, 66, 243, 154, 295, 22},
		{133, 0.2, 60, 113, 20, 168, 145},
		{66, 60, 0.25, 145, 80, 226, 89},
		{243, 113, 145, 0.13, 100, 103, 226},
		{154, 20, 80, 100, 0.26, 161, 156},
		{295, 168, 226, 103, 161, 0.2, 322},
		{22, 145, 89, 226, 156, 322, 0.23},
	}
)

// Table1RTT returns the round-trip matrix for the first n datacenters.
// The paper's 3-, 5- and 7-DC experiments use prefixes of the region
// list.
func Table1RTT(n int) [][]time.Duration {
	if n > len(Table1Regions) {
		panic(fmt.Sprintf("harness: at most %d datacenters in Table 1", len(Table1Regions)))
	}
	out := make([][]time.Duration, n)
	for i := 0; i < n; i++ {
		out[i] = make([]time.Duration, n)
		for j := 0; j < n; j++ {
			out[i][j] = time.Duration(table1ms[i][j] * float64(time.Millisecond))
		}
	}
	return out
}

// FormatTable1 renders the latency matrix the way the paper prints it.
func FormatTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: inter-datacenter round-trip latencies (ms)\n\n    ")
	for _, r := range Table1Regions {
		fmt.Fprintf(&b, "%6s", r)
	}
	b.WriteByte('\n')
	for i, r := range Table1Regions {
		fmt.Fprintf(&b, "%-4s", r)
		for j := 0; j <= i; j++ {
			fmt.Fprintf(&b, "%6.4g", table1ms[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxRTT returns the largest round trip among the first n datacenters
// (the paper's completion-time floor across datacenters).
func MaxRTT(n int) time.Duration {
	var max time.Duration
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := time.Duration(table1ms[i][j] * float64(time.Millisecond)); d > max {
				max = d
			}
		}
	}
	return max
}
