package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"canopus/internal/metrics"
	"canopus/internal/workload"
)

// Options tunes experiment execution. Quick mode shortens measurement
// windows and search resolution for CI-speed runs; full mode matches the
// documented EXPERIMENTS.md results. Build one with NewOptions; every
// experiment entry point (Fig4a…Fig7, Table1, Live) takes this single
// surface.
type Options struct {
	Quick bool
	Seed  int64
	Out   io.Writer
	// JSONOut, when non-empty, makes experiments that support it (Live)
	// also write their metrics as JSON to this path.
	JSONOut string
	// DataDir, when non-empty, runs the live cluster with the durable
	// storage engine under this directory (one subdirectory per cluster
	// shape and node) — the measured path then includes WAL appends and
	// fsync-gated replies, for checking durability against the committed
	// in-memory baseline.
	DataDir string
	// Registry, when non-nil, receives the instruments of experiments
	// that run real nodes (Live wires it into its headline cluster
	// shape), letting drivers attribute throughput to pipeline stages
	// and serve the run's /metrics.
	Registry *metrics.Registry
	// KeyDist selects the live workload's key popularity distribution
	// (workload.DistUniform when empty; workload.DistZipf for the
	// contended hot-key shape).
	KeyDist workload.KeyDist
}

// Option mutates Options; see NewOptions.
type Option func(*Options)

// NewOptions builds the experiment configuration. Defaults: full (not
// quick) runs, seed 1, output to os.Stdout.
func NewOptions(opts ...Option) *Options {
	o := &Options{Seed: 1, Out: os.Stdout}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// WithQuick selects CI-speed windows and search resolution.
func WithQuick(quick bool) Option { return func(o *Options) { o.Quick = quick } }

// WithSeed sets the workload seed.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithOutput directs the experiment's table output.
func WithOutput(w io.Writer) Option { return func(o *Options) { o.Out = w } }

// WithJSONOut also writes supported experiments' metrics as JSON here.
func WithJSONOut(path string) Option { return func(o *Options) { o.JSONOut = path } }

// WithDataDir runs live clusters durably under this directory.
func WithDataDir(dir string) Option { return func(o *Options) { o.DataDir = dir } }

// WithRegistry exports real-node experiment instruments into reg.
func WithRegistry(reg *metrics.Registry) Option { return func(o *Options) { o.Registry = reg } }

// WithKeyDist selects the live workload's key distribution.
func WithKeyDist(d workload.KeyDist) Option { return func(o *Options) { o.KeyDist = d } }

func (o *Options) windows() (warm, measure time.Duration) {
	if o.Quick {
		return 300 * time.Millisecond, 700 * time.Millisecond
	}
	return 500 * time.Millisecond, 2 * time.Second
}

func (o *Options) wanWindows() (warm, measure time.Duration) {
	if o.Quick {
		return 1500 * time.Millisecond, 1500 * time.Millisecond
	}
	return 2 * time.Second, 3 * time.Second
}

func (o *Options) bisections() int {
	if o.Quick {
		return 2
	}
	return 4
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Fig4Sizes are the paper's single-DC deployment sizes: 3 racks of
// 3/5/7/9 nodes (oversubscription 1.5–4.5).
var Fig4Sizes = []int{3, 5, 7, 9}

// fig4Row identifies one series of Figure 4.
type fig4Row struct {
	label      string
	system     System
	writeRatio float64
	batch      time.Duration
}

func fig4Rows() []fig4Row {
	return []fig4Row{
		{"Canopus 20% writes", Canopus, 0.20, 0},
		{"Canopus 50% writes", Canopus, 0.50, 0},
		{"Canopus 100% writes", Canopus, 1.00, 0},
		{"EPaxos 5ms batch", EPaxos, 0.20, 5 * time.Millisecond},
		{"EPaxos 2ms batch", EPaxos, 0.20, 2 * time.Millisecond},
	}
}

func fig4Spec(o *Options, row fig4Row, perRack int) Spec {
	warm, measure := o.windows()
	return Spec{
		System:      row.system,
		Groups:      3,
		PerGroup:    perRack,
		WriteRatio:  row.writeRatio,
		EPaxosBatch: row.batch,
		Seed:        o.Seed + 1,
		Warmup:      warm,
		Measure:     measure,
	}
}

// Fig4aResults computes the Figure 4(a) matrix: max throughput per
// system/mix per deployment size.
func Fig4aResults(o *Options) map[string]map[int]Result {
	out := make(map[string]map[int]Result)
	for _, row := range fig4Rows() {
		out[row.label] = make(map[int]Result)
		for _, perRack := range Fig4Sizes {
			spec := fig4Spec(o, row, perRack)
			out[row.label][perRack] = Search{Spec: spec, Start: 100_000, Bisections: o.bisections()}.Max()
		}
	}
	return out
}

// Fig4a prints Figure 4(a): single-DC max throughput vs node count.
func Fig4a(o *Options) {
	fmt.Fprintln(o.Out, "Figure 4(a): single-datacenter throughput (requests/s) vs nodes")
	fmt.Fprintln(o.Out, "3 racks; 10G NICs; 2x10G uplinks; saturation at median > 10ms")
	fmt.Fprintln(o.Out)
	res := Fig4aResults(o)
	tbl := &metrics.Table{Header: []string{"series", "9 nodes", "15 nodes", "21 nodes", "27 nodes"}}
	for _, row := range fig4Rows() {
		cells := []string{row.label}
		for _, perRack := range Fig4Sizes {
			cells = append(cells, metrics.FormatRate(res[row.label][perRack].Throughput))
		}
		tbl.Add(cells...)
	}
	fmt.Fprint(o.Out, tbl.String())
}

// Fig4b prints Figure 4(b): median completion time at 70% of max load.
func Fig4b(o *Options) {
	fmt.Fprintln(o.Out, "Figure 4(b): median request completion time (ms) at 70% of max throughput")
	fmt.Fprintln(o.Out)
	tbl := &metrics.Table{Header: []string{"series", "9 nodes", "15 nodes", "21 nodes", "27 nodes"}}
	for _, row := range fig4Rows() {
		cells := []string{row.label}
		for _, perRack := range Fig4Sizes {
			search := Search{Spec: fig4Spec(o, row, perRack), Start: 100_000, Bisections: o.bisections()}
			at70 := search.At70(search.Max())
			cells = append(cells, ms(at70.Median))
		}
		tbl.Add(cells...)
	}
	fmt.Fprint(o.Out, tbl.String())
}

// Fig5 prints Figure 5: ZooKeeper vs ZKCanopus latency/throughput curves
// at 9 and 27 nodes (ZooKeeper: 5 voting followers, rest observers).
func Fig5(o *Options) {
	fmt.Fprintln(o.Out, "Figure 5: ZooKeeper vs ZKCanopus, 20% writes")
	warm, measure := o.windows()
	for _, perRack := range []int{3, 9} {
		n := perRack * 3
		fmt.Fprintf(o.Out, "\n--- %d nodes ---\n", n)
		for _, sys := range []System{Zab, ZKCanopus} {
			spec := Spec{
				System: sys, Groups: 3, PerGroup: perRack, WriteRatio: 0.2,
				Seed: o.Seed + 1, Warmup: warm, Measure: measure,
			}
			curve := Sweep{Spec: spec, Start: 25_000, Stop: SingleDCThreshold, MaxPoints: 10}.Curve()
			fmt.Fprintf(o.Out, "%s:\n", sys)
			tbl := &metrics.Table{Header: []string{"offered/s", "throughput/s", "median ms"}}
			for _, p := range curve {
				tbl.Add(metrics.FormatRate(p.Offered), metrics.FormatRate(p.Throughput), ms(p.Median))
			}
			fmt.Fprint(o.Out, tbl.String())
		}
	}
}

// fig6Spec builds the paper's multi-DC deployment.
func fig6Spec(o *Options, sys System, dcs int, writeRatio float64) Spec {
	warm, measure := o.wanWindows()
	return Spec{
		System:     sys,
		MultiDC:    true,
		Groups:     dcs,
		PerGroup:   3,
		WriteRatio: writeRatio,
		Seed:       o.Seed + 1,
		Warmup:     warm,
		Measure:    measure,
	}
}

// Fig6 prints Figure 6: multi-datacenter latency/throughput curves for
// 3, 5 and 7 datacenters at 20% writes, with the 1.5×-base-latency knee
// the paper marks with vertical lines.
func Fig6(o *Options) {
	fmt.Fprintln(o.Out, "Figure 6: multi-datacenter deployment, 20% writes, Table 1 latencies")
	for _, dcs := range []int{3, 5, 7} {
		fmt.Fprintf(o.Out, "\n--- %d datacenters (%d nodes) ---\n", dcs, dcs*3)
		for _, sys := range []System{Canopus, EPaxos} {
			spec := fig6Spec(o, sys, dcs, 0.2)
			curve := Sweep{Spec: spec, Start: 50_000, Stop: 4 * MaxRTT(dcs)}.Curve()
			base := curve[0].Median
			knee := Knee(curve, base+base/2)
			fmt.Fprintf(o.Out, "%s (base median %s ms, knee at 1.5x base: %s req/s):\n",
				sys, ms(base), metrics.FormatRate(knee.Throughput))
			tbl := &metrics.Table{Header: []string{"offered/s", "throughput/s", "median ms"}}
			for _, p := range curve {
				tbl.Add(metrics.FormatRate(p.Offered), metrics.FormatRate(p.Throughput), ms(p.Median))
			}
			fmt.Fprint(o.Out, tbl.String())
		}
	}
}

// Fig7 prints Figure 7: write-ratio sweep in the 3-DC deployment.
func Fig7(o *Options) {
	fmt.Fprintln(o.Out, "Figure 7: 3 datacenters, 9 nodes, write-ratio sweep")
	series := []struct {
		label string
		sys   System
		ratio float64
	}{
		{"Canopus 1% writes", Canopus, 0.01},
		{"Canopus 20% writes", Canopus, 0.20},
		{"Canopus 50% writes", Canopus, 0.50},
		{"EPaxos 20% writes", EPaxos, 0.20},
	}
	for _, s := range series {
		spec := fig6Spec(o, s.sys, 3, s.ratio)
		curve := Sweep{Spec: spec, Start: 50_000, Stop: 4 * MaxRTT(3)}.Curve()
		knee := Knee(curve, curve[0].Median+curve[0].Median/2)
		fmt.Fprintf(o.Out, "\n%s (knee: %s req/s):\n", s.label, metrics.FormatRate(knee.Throughput))
		tbl := &metrics.Table{Header: []string{"offered/s", "throughput/s", "median ms"}}
		for _, p := range curve {
			tbl.Add(metrics.FormatRate(p.Offered), metrics.FormatRate(p.Throughput), ms(p.Median))
		}
		fmt.Fprint(o.Out, tbl.String())
	}
}

// Table1 prints the latency matrix the multi-DC experiments use.
func Table1(o *Options) {
	fmt.Fprint(o.Out, FormatTable1())
}
