package harness

import (
	"testing"
	"time"
)

// TestShapeFig4a spot-checks the headline claim at reduced windows: at 27
// nodes with a read-heavy mix, Canopus sustains a multiple of EPaxos.
func TestShapeFig4a(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check")
	}
	warm, meas := 300*time.Millisecond, 700*time.Millisecond
	run := func(sys System, perRack int, ratio float64, batch time.Duration) Result {
		return MaxThroughput(Spec{
			System: sys, Groups: 3, PerGroup: perRack, WriteRatio: ratio,
			EPaxosBatch: batch, Seed: 5, Warmup: warm, Measure: meas,
		}, SingleDCThreshold, 100_000, 2)
	}
	c9 := run(Canopus, 3, 0.2, 0)
	c27 := run(Canopus, 9, 0.2, 0)
	e9 := run(EPaxos, 3, 0.2, 5*time.Millisecond)
	e27 := run(EPaxos, 9, 0.2, 5*time.Millisecond)
	e27b2 := run(EPaxos, 9, 0.2, 2*time.Millisecond)
	cw27 := run(Canopus, 9, 1.0, 0)
	t.Logf("Canopus 20%%w: 9n=%.0f 27n=%.0f | EPaxos5ms: 9n=%.0f 27n=%.0f | EPaxos2ms 27n=%.0f | Canopus100%%w 27n=%.0f",
		c9.Throughput, c27.Throughput, e9.Throughput, e27.Throughput, e27b2.Throughput, cw27.Throughput)
	if c27.Throughput < c9.Throughput {
		t.Errorf("Canopus read-heavy throughput did not scale with nodes: 9n=%.0f 27n=%.0f", c9.Throughput, c27.Throughput)
	}
	// Quick-mode searches resolve to ~±17%; full runs land >3x. Assert
	// the conservative bound here.
	if c27.Throughput < 2.5*e27.Throughput {
		t.Errorf("Canopus at 27 nodes should be >=2.5x EPaxos-5ms: %.0f vs %.0f", c27.Throughput, e27.Throughput)
	}
}
