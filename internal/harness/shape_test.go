package harness

import (
	"testing"
	"time"
)

// TestShapeFig4a spot-checks the headline claim at reduced windows: at 27
// nodes with a read-heavy mix, Canopus sustains a multiple of EPaxos.
// Under -short the windows and search resolution shrink further and only
// the essential 27-node comparison runs, with a correspondingly coarser
// bound.
func TestShapeFig4a(t *testing.T) {
	warm, meas := windows(300*time.Millisecond, 700*time.Millisecond)
	bisections := 2
	if testing.Short() {
		bisections = 1
	}
	run := func(sys System, perRack int, ratio float64, batch time.Duration) Result {
		return Search{Spec: Spec{
			System: sys, Groups: 3, PerGroup: perRack, WriteRatio: ratio,
			EPaxosBatch: batch, Seed: 5, Warmup: warm, Measure: meas,
		}, Start: 100_000, Bisections: bisections}.Max()
	}
	c27 := run(Canopus, 9, 0.2, 0)
	e27 := run(EPaxos, 9, 0.2, 5*time.Millisecond)
	if testing.Short() {
		t.Logf("short: Canopus 27n=%.0f EPaxos5ms 27n=%.0f", c27.Throughput, e27.Throughput)
		if c27.Throughput < 2*e27.Throughput {
			t.Errorf("Canopus at 27 nodes should be >=2x EPaxos-5ms: %.0f vs %.0f", c27.Throughput, e27.Throughput)
		}
		return
	}
	c9 := run(Canopus, 3, 0.2, 0)
	e9 := run(EPaxos, 3, 0.2, 5*time.Millisecond)
	e27b2 := run(EPaxos, 9, 0.2, 2*time.Millisecond)
	cw27 := run(Canopus, 9, 1.0, 0)
	t.Logf("Canopus 20%%w: 9n=%.0f 27n=%.0f | EPaxos5ms: 9n=%.0f 27n=%.0f | EPaxos2ms 27n=%.0f | Canopus100%%w 27n=%.0f",
		c9.Throughput, c27.Throughput, e9.Throughput, e27.Throughput, e27b2.Throughput, cw27.Throughput)
	if c27.Throughput < c9.Throughput {
		t.Errorf("Canopus read-heavy throughput did not scale with nodes: 9n=%.0f 27n=%.0f", c9.Throughput, c27.Throughput)
	}
	// Quick-mode searches resolve to ~±17%; full runs land >3x. Assert
	// the conservative bound here.
	if c27.Throughput < 2.5*e27.Throughput {
		t.Errorf("Canopus at 27 nodes should be >=2.5x EPaxos-5ms: %.0f vs %.0f", c27.Throughput, e27.Throughput)
	}
}
