package harness

import (
	"testing"
)

// TestShardedStoreChaosDeterminism runs the chaos scenario catalog with
// sharded replica stores and pins two invariants of the sharded state
// machine:
//
//  1. Sharding is protocol-invisible: a run differing only in shard
//     count replays with identical event counts, commit digests and
//     (shard-count-independent) state digests.
//  2. Replica equality: replicas with equal shard counts that finished
//     at the same committed cycle — and were never crash-restarted, so
//     their apply logs cover the same prefix — hold identical
//     LogLen/LogDigest, and all same-position replicas agree on
//     StateDigest.
func TestShardedStoreChaosDeterminism(t *testing.T) {
	scenarios := Scenarios(23)
	if testing.Short() {
		scenarios = QuickScenarios(23)
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			flatSpec := sc.Spec
			flatSpec.StoreShards = 1
			shardSpec := sc.Spec
			shardSpec.StoreShards = 4

			flat := RunChaos(flatSpec)
			sharded := RunChaos(shardSpec)

			if !sharded.Linearizable {
				t.Fatalf("sharded run history not linearizable (%d ops)", len(sharded.History))
			}
			if flat.Events != sharded.Events || flat.Commits != sharded.Commits ||
				flat.CommitDigest != sharded.CommitDigest {
				t.Fatalf("sharding changed protocol behavior: events %d/%d commits %d/%d digest %x/%x",
					flat.Events, sharded.Events, flat.Commits, sharded.Commits,
					flat.CommitDigest, sharded.CommitDigest)
			}
			if flat.StateDigest != sharded.StateDigest {
				t.Fatalf("StateDigest depends on shard count: %x vs %x", flat.StateDigest, sharded.StateDigest)
			}

			byCycle := map[uint64]ReplicaState{}
			for _, rep := range sharded.Replicas {
				ref, ok := byCycle[rep.Committed]
				if !ok {
					byCycle[rep.Committed] = rep
					continue
				}
				if rep.StateDigest != ref.StateDigest {
					t.Fatalf("replicas %v and %v at cycle %d disagree on state: %x vs %x",
						ref.Node, rep.Node, rep.Committed, ref.StateDigest, rep.StateDigest)
				}
				// Log digests only compare between never-restarted
				// replicas (per ReplicaState.Restarted, which covers both
				// fault-plan and eviction restarts): a rejoined node's log
				// starts from a snapshot install, not the historical write
				// sequence.
				if !rep.Restarted && !ref.Restarted &&
					(rep.LogDigest != ref.LogDigest || rep.LogLen != ref.LogLen) {
					t.Fatalf("replicas %v and %v at cycle %d disagree on apply log: %d/%x vs %d/%x",
						ref.Node, rep.Node, rep.Committed, ref.LogLen, ref.LogDigest, rep.LogLen, rep.LogDigest)
				}
			}

			// Replaying the sharded spec must be bit-identical, per-replica
			// digests included.
			again := RunChaos(shardSpec)
			if len(again.Replicas) != len(sharded.Replicas) {
				t.Fatalf("replay replica count %d != %d", len(again.Replicas), len(sharded.Replicas))
			}
			for i := range sharded.Replicas {
				if again.Replicas[i] != sharded.Replicas[i] {
					t.Fatalf("replay diverged at replica %d: %+v vs %+v",
						i, again.Replicas[i], sharded.Replicas[i])
				}
			}
		})
	}
}
