package harness

import (
	"testing"
	"time"
)

func TestShapePoints(t *testing.T) {
	warm, meas := windows(300*time.Millisecond, 700*time.Millisecond)
	spec := Spec{System: Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		Seed: 5, Warmup: warm, Measure: meas}
	rates := []float64{1.8e6, 2.2e6, 2.6e6}
	if testing.Short() {
		rates = rates[:1] // one representative load point in CI
	}
	for _, rate := range rates {
		r := Run(spec, rate)
		t.Logf("canopus 27n @%.1fM: tput=%.2fM median=%v p95=%v p99=%v events=%d",
			rate/1e6, r.Throughput/1e6, r.Median, r.P95, r.P99, r.Events)
	}
}
