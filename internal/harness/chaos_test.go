package harness

import (
	"testing"
	"time"

	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// TestScenarioCatalog runs every cataloged chaos scenario and checks the
// three invariants all of them share: the system keeps (or resumes)
// committing, the completed-operation history is linearizable, and the
// run is reproducible. Under -short only the QuickScenarios subset runs.
func TestScenarioCatalog(t *testing.T) {
	scenarios := Scenarios(11)
	if testing.Short() {
		scenarios = QuickScenarios(11)
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r := RunChaos(sc.Spec)
			t.Logf("%s: %s events=%d", sc.Name, r, r.Events)
			if !r.Linearizable {
				t.Fatalf("history of %d ops is not linearizable", len(r.History))
			}
			if r.Commits == 0 || r.OpsDone == 0 {
				t.Fatalf("no progress: commits=%d ops=%d", r.Commits, r.OpsDone)
			}
			if sc.Spec.FaultAt > 0 && !r.Recovered {
				t.Fatalf("no commit after the fault at %v (longest stall %v)", sc.Spec.FaultAt, r.LongestStall)
			}
		})
	}
}

// TestRepresentativeCrashMidCycleCommitsAfterRecovery is the acceptance
// scenario: a representative dies mid-cycle, the cluster commits the
// in-flight cycle after recovery with a linearizable history, and
// replaying the same seed + FaultPlan yields an identical commit log.
func TestRepresentativeCrashMidCycleCommitsAfterRecovery(t *testing.T) {
	sc := ScenarioRepresentativeCrashMidCycle(7)
	r1 := RunChaos(sc.Spec)
	t.Logf("run: %s", r1)
	if !r1.Linearizable {
		t.Fatal("history not linearizable")
	}
	if !r1.Recovered {
		t.Fatalf("cluster never committed after the representative crash (stall %v)", r1.LongestStall)
	}
	// Commits strictly after the fault: the availability timeline must
	// contain post-fault events beyond the pre-fault count.
	if r1.Recovery > 2*time.Second {
		t.Fatalf("recovery took %v; failure cut + fetch takeover should land well under 2s", r1.Recovery)
	}

	r2 := RunChaos(sc.Spec)
	if r1.CommitDigest != r2.CommitDigest || r1.StateDigest != r2.StateDigest ||
		r1.Commits != r2.Commits || r1.Events != r2.Events {
		t.Fatalf("replay diverged: commits %d/%d digest %x/%x state %x/%x events %d/%d",
			r1.Commits, r2.Commits, r1.CommitDigest, r2.CommitDigest,
			r1.StateDigest, r2.StateDigest, r1.Events, r2.Events)
	}
	if len(r1.History) != len(r2.History) {
		t.Fatalf("replay produced different histories: %d vs %d ops", len(r1.History), len(r2.History))
	}
}

// TestWANPartitionAvailabilityDip checks the availability metrics see
// the partition: commits stall for roughly the cut's length and resume
// promptly after the heal.
func TestWANPartitionAvailabilityDip(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN scenario is covered by the catalog test in full mode")
	}
	sc := ScenarioWANPartitionHeal(3)
	r := RunChaos(sc.Spec)
	t.Logf("wan: %s", r)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	// The cut lasts 1s; the longest commit-free span must reflect it.
	if r.LongestStall < 900*time.Millisecond {
		t.Fatalf("longest stall %v; expected ≈1s partition outage", r.LongestStall)
	}
	if !r.Recovered || r.Recovery > time.Second {
		t.Fatalf("commits did not resume promptly after heal: recovered=%v in %v", r.Recovered, r.Recovery)
	}
	if r.Availability < 0.4 || r.Availability > 0.95 {
		t.Fatalf("availability %.2f implausible for a 1s outage in a 6s run", r.Availability)
	}
}

// TestRollingRestartsConverge checks state-loss restarts: after both
// nodes rejoin via the join protocol, every replica holds the same
// state.
func TestRollingRestartsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the catalog test in full mode")
	}
	sc := ScenarioRollingRestarts(5)
	r := RunChaos(sc.Spec)
	t.Logf("rolling: %s", r)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	// The crashes must actually interrupt service: each kill stalls
	// commits for at least the broadcast failure-detection window
	// (25×4×Tick = 100ms) before the cut re-drives the cycles.
	if r.LongestStall < 100*time.Millisecond {
		t.Fatalf("longest stall %v; the crash plan did not bite", r.LongestStall)
	}
}

// TestFluidRunSurvivesFaults exercises the Spec.Faults plumbing on the
// fluid (figure-generating) path: a crash plus restart mid-measurement
// must not wedge the run, and throughput must stay positive.
func TestFluidRunSurvivesFaults(t *testing.T) {
	spec := quickSpec(Canopus)
	spec.Faults = netsim.FaultPlan{
		Crashes: []netsim.CrashFault{{
			At: 300 * time.Millisecond, Node: 5, RestartAt: 450 * time.Millisecond,
		}},
	}
	r := Run(spec, 50_000)
	if r.Throughput <= 0 {
		t.Fatalf("throughput %.0f with a crash-restart plan", r.Throughput)
	}
	t.Logf("fluid with faults: tput=%.0f median=%v", r.Throughput, r.Median)
}

// TestChaosReferencePicksUncrashedNode pins the digest anchor rule.
func TestChaosReferencePicksUncrashedNode(t *testing.T) {
	plan := netsim.FaultPlan{Crashes: []netsim.CrashFault{
		{At: time.Second, Node: 0}, {At: time.Second, Node: 1, RestartAt: 2 * time.Second},
	}}
	if got := referenceNode(6, plan); got != wire.NodeID(2) {
		t.Fatalf("reference = %v, want 2", got)
	}
	// All-crash plans anchor on the lowest restarting node.
	all := netsim.FaultPlan{Crashes: []netsim.CrashFault{
		{At: time.Second, Node: 0},
		{At: time.Second, Node: 1, RestartAt: 2 * time.Second},
		{At: time.Second, Node: 2, RestartAt: 2 * time.Second},
	}}
	if got := referenceNode(3, all); got != wire.NodeID(1) {
		t.Fatalf("all-crash reference = %v, want 1", got)
	}
}

// TestPowerLossDurableRecovery is the acceptance scenario for the
// storage engine: every node is killed at the same instant and restarts
// from its durable disk. Commits must resume, the history spanning the
// outage must be linearizable, replicas at equal commit positions must
// hold identical state, and replaying the same seed + plan — recovery
// included — must be bit-identical.
func TestPowerLossDurableRecovery(t *testing.T) {
	sc := ScenarioPowerLoss(9)
	r1 := RunChaos(sc.Spec)
	t.Logf("power-loss: %s events=%d", r1, r1.Events)
	if !r1.Linearizable {
		t.Fatalf("history of %d ops is not linearizable across the outage", len(r1.History))
	}
	if !r1.Recovered {
		t.Fatalf("no commit after full-cluster restart (longest stall %v)", r1.LongestStall)
	}
	// The outage is ~1.5s of wall-clock plus the restart stagger: the
	// stall must reflect it, or the plan did not actually take the whole
	// cluster down.
	if r1.LongestStall < time.Second {
		t.Fatalf("longest stall %v; the power loss did not bite", r1.LongestStall)
	}
	// Durable recovery must preserve replica equality: any two replicas
	// at the same committed cycle agree on every digest.
	for i := range r1.Replicas {
		for j := i + 1; j < len(r1.Replicas); j++ {
			a, b := r1.Replicas[i], r1.Replicas[j]
			if a.Committed != b.Committed {
				continue
			}
			if a.LogLen != b.LogLen || a.LogDigest != b.LogDigest || a.StateDigest != b.StateDigest {
				t.Fatalf("replicas %v and %v diverge at cycle %d: loglen %d/%d logdigest %x/%x state %x/%x",
					a.Node, b.Node, a.Committed, a.LogLen, b.LogLen,
					a.LogDigest, b.LogDigest, a.StateDigest, b.StateDigest)
			}
		}
	}
	for _, rep := range r1.Replicas {
		if rep.Committed == 0 {
			t.Fatalf("replica %v never committed after recovery", rep.Node)
		}
	}

	r2 := RunChaos(sc.Spec)
	if r1.CommitDigest != r2.CommitDigest || r1.StateDigest != r2.StateDigest ||
		r1.Commits != r2.Commits || r1.Events != r2.Events {
		t.Fatalf("replay diverged: commits %d/%d digest %x/%x state %x/%x events %d/%d",
			r1.Commits, r2.Commits, r1.CommitDigest, r2.CommitDigest,
			r1.StateDigest, r2.StateDigest, r1.Events, r2.Events)
	}
}
