package harness

import (
	"testing"
	"time"

	"canopus/internal/core"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// leafScenarios is the eviction-enabled slice of the catalog: every
// scenario whose fault plan kills or cuts a whole super-leaf, exercising
// the eviction/readmission machinery end to end.
func leafScenarios(seed int64) []Scenario {
	return []Scenario{
		ScenarioLeafPartitionEvict(seed),
		ScenarioLeafMajorityCrash(seed),
		ScenarioLeafPowerLossDurable(seed),
		ScenarioGeoLeafEvictReadmit(seed),
	}
}

// TestLeafScenarioReplayBitIdentical replays each leaf scenario and
// demands bit-identical results: same commit log digest, same final
// state, same event count, same availability timeline, same history
// length. Leaf eviction adds three nondeterminism hazards the plain
// catalog doesn't have — timeout-triggered sends, map-keyed eviction
// state, and the restart-as-joiner path — so replay identity is asserted
// per scenario here, not just for the crash scenario.
func TestLeafScenarioReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("leaf replay matrix runs in full mode")
	}
	for _, sc := range leafScenarios(17) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r1 := RunChaos(sc.Spec)
			t.Logf("%s: %s", sc.Name, r1)
			if !r1.Linearizable {
				t.Fatalf("history of %d ops is not linearizable", len(r1.History))
			}
			if r1.Evictions == 0 {
				t.Fatal("no leaf eviction resolved; the scenario's fault did not bite")
			}
			if r1.Readmissions == 0 {
				t.Fatal("evicted leaf never readmitted")
			}
			r2 := RunChaos(sc.Spec)
			if r1.Commits != r2.Commits || r1.CommitDigest != r2.CommitDigest ||
				r1.StateDigest != r2.StateDigest || r1.Events != r2.Events {
				t.Fatalf("replay diverged: commits %d/%d commitdigest %x/%x state %x/%x events %d/%d",
					r1.Commits, r2.Commits, r1.CommitDigest, r2.CommitDigest,
					r1.StateDigest, r2.StateDigest, r1.Events, r2.Events)
			}
			if len(r1.History) != len(r2.History) {
				t.Fatalf("replay histories differ: %d vs %d ops", len(r1.History), len(r2.History))
			}
			if len(r1.Windows) != len(r2.Windows) {
				t.Fatalf("replay timelines differ: %d vs %d windows", len(r1.Windows), len(r2.Windows))
			}
			for i := range r1.Windows {
				if r1.Windows[i] != r2.Windows[i] {
					t.Fatalf("window %d diverged: %d vs %d commits", i, r1.Windows[i], r2.Windows[i])
				}
			}
		})
	}
}

// TestLeafMajorityCrashBoundedRecovery pins the recovery-time story for
// the worst intra-leaf fault short of power loss: two of three members
// crash, the leaf loses its broadcast quorum, and the survivors must
// evict the whole leaf before commits resume. The outage is bounded by
// LeafTimeout plus the eviction round's resolution, and the availability
// timeline must show exactly that shape — commits, a gap, commits.
func TestLeafMajorityCrashBoundedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("covered in spirit by the quick catalog's leaf-partition-evict")
	}
	sc := ScenarioLeafMajorityCrash(19)
	r := RunChaos(sc.Spec)
	t.Logf("%s: %s windows=%v", sc.Name, r, r.Windows)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	if !r.Recovered {
		t.Fatalf("no commit after the fault (longest stall %v)", r.LongestStall)
	}
	// The leaf quorum dies at FaultAt; the merge wedges until the
	// survivors' eviction lands. The stall must reflect the armed
	// LeafTimeout (600ms) — much shorter means the fault didn't bite,
	// much longer means eviction resolution is not bounded.
	if r.LongestStall < sc.Spec.Node.LeafTimeout {
		t.Fatalf("longest stall %v < LeafTimeout %v; the crash did not wedge the merge",
			r.LongestStall, sc.Spec.Node.LeafTimeout)
	}
	if r.LongestStall > 4*sc.Spec.Node.LeafTimeout {
		t.Fatalf("longest stall %v; eviction should bound the outage near LeafTimeout=%v",
			r.LongestStall, sc.Spec.Node.LeafTimeout)
	}
	if r.Evictions == 0 || r.Readmissions == 0 {
		t.Fatalf("evictions=%d readmissions=%d; want both > 0", r.Evictions, r.Readmissions)
	}
	// Availability timeline shape: an outage gap around the fault, then
	// sustained commits once the tombstone lands — including the tail,
	// after the crashed pair rejoined.
	gap := 0
	for _, w := range r.Windows {
		if w == 0 {
			gap++
		}
	}
	if gap == 0 {
		t.Fatal("no zero-commit window; the outage is invisible in the timeline")
	}
	maxGapWindows := int(4*sc.Spec.Node.LeafTimeout/r.WindowSize) + 1
	if gap > maxGapWindows {
		t.Fatalf("%d outage windows (%v); want ≤ %d", gap, time.Duration(gap)*r.WindowSize, maxGapWindows)
	}
	tail := r.Windows[len(r.Windows)-5:]
	for i, w := range tail {
		if w == 0 {
			t.Fatalf("tail window %d of 5 has no commits; cluster not healthy after readmission", i)
		}
	}
}

// TestLeafPartitionEvictOutageShape asserts the signature property of
// leaf eviction: availability returns while the partition is still up.
// The cut leaf wedges the merge only until the survivors evict it —
// well before the heal — so the timeline must show commits resuming
// between eviction and heal.
func TestLeafPartitionEvictOutageShape(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the quick catalog in short mode")
	}
	sc := ScenarioLeafPartitionEvict(23)
	r := RunChaos(sc.Spec)
	t.Logf("%s: %s windows=%v", sc.Name, r, r.Windows)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	// The partition runs [1.5s, 3.5s); eviction resolves ~LeafTimeout
	// (600ms) into it. Count commits in the still-partitioned span after
	// the eviction budget: [2.5s, 3.5s) must be served by the surviving
	// two leaves.
	lo := int((2500 * time.Millisecond) / r.WindowSize)
	hi := int((3500 * time.Millisecond) / r.WindowSize)
	served := 0
	for _, w := range r.Windows[lo:hi] {
		if w > 0 {
			served++
		}
	}
	if served < (hi-lo)*3/4 {
		t.Fatalf("only %d/%d mid-partition windows saw commits; eviction did not restore availability",
			served, hi-lo)
	}
	if r.Availability < 0.75 {
		t.Fatalf("availability %.2f; a 600ms-bounded outage in a 7s run should stay above 0.75",
			r.Availability)
	}
}

// TestGeoLeafEvictReadmitCampaign is the geo-scale acceptance run: five
// DCs across the WAN latency ladder, the transoceanic one cut off and
// readmitted, with every timeout budget riding real continental round
// trips. Beyond the catalog invariants it asserts full replica
// convergence — the rejoined DC's replicas must end bit-identical to
// the reference, state transfer included.
func TestGeoLeafEvictReadmitCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("geo campaign runs in full mode")
	}
	sc := ScenarioGeoLeafEvictReadmit(23)
	r := RunChaos(sc.Spec)
	t.Logf("%s: %s", sc.Name, r)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	if r.Evictions == 0 || r.Readmissions == 0 {
		t.Fatalf("evictions=%d readmissions=%d; want both > 0", r.Evictions, r.Readmissions)
	}
	// One DC of five is gone for 4 of 12 seconds, and WAN commit latency
	// bunches commits per round trip: the availability floor is modest
	// but must clear the all-stalled failure mode.
	if r.Availability < 0.30 {
		t.Fatalf("availability %.2f; geo campaign floor is 0.30", r.Availability)
	}
	// Eviction must bound the outage: the merge may wedge from the cut
	// until the tombstone lands (~LeafTimeout + WAN resolution), never
	// for the partition's whole 4s.
	if r.LongestStall > 3*time.Second {
		t.Fatalf("longest stall %v; eviction should cap the outage near LeafTimeout=%v",
			r.LongestStall, sc.Spec.Node.LeafTimeout)
	}
	var ref *ReplicaState
	for i := range r.Replicas {
		if !r.Replicas[i].Restarted {
			ref = &r.Replicas[i]
			break
		}
	}
	if ref == nil {
		t.Fatal("no never-restarted replica to anchor convergence")
	}
	for _, rep := range r.Replicas {
		if rep.Committed != ref.Committed {
			t.Fatalf("replica n%d committed=%d, reference n%d committed=%d; rejoined DC lagged out of the run",
				rep.Node, rep.Committed, ref.Node, ref.Committed)
		}
		if rep.StateDigest != ref.StateDigest {
			t.Fatalf("replica n%d state %x != reference n%d state %x; state transfer diverged",
				rep.Node, rep.StateDigest, ref.Node, ref.StateDigest)
		}
	}
}

// TestLargeTopologySoak is the width test: seven super-leaves of nine
// nodes — 63 replicas — with one whole leaf cut and healed
// mid-run. Asserts the catalog invariants plus replica-set convergence
// and replay identity at a scale where per-leaf bookkeeping bugs
// (ordinal mixups, map-order sends, quorum miscounts) actually surface.
func TestLargeTopologySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("63-node soak runs in full mode")
	}
	leaf3 := ids(27, 28, 29, 30, 31, 32, 33, 34, 35)
	var rest []wire.NodeID
	for i := 0; i < 63; i++ {
		if i < 27 || i >= 36 {
			rest = append(rest, wire.NodeID(i))
		}
	}
	spec := ChaosSpec{
		Groups: 7, PerGroup: 9, Seed: 31,
		Duration: 6 * time.Second,
		FaultAt:  1500 * time.Millisecond,
		// 63 closed-loop default clients burn the default 128-key
		// lincheck budget (128 keys × 55 checkable ops) in under two
		// seconds, and once every client parks the self-clocked cycles
		// stop with them. One client per node over a 1024-key space
		// keeps load (and the availability timeline) alive for the full
		// run while staying inside the checker's per-key window.
		Clients: 1,
		Keys:    1024,
		Node: core.Config{
			LeafTimeout:  600 * time.Millisecond,
			FetchTimeout: 100 * time.Millisecond,
		},
		Faults: netsim.FaultPlan{
			Partitions: []netsim.PartitionFault{
				netsim.LeafPartition(1500*time.Millisecond, 3500*time.Millisecond, leaf3, rest),
			},
		},
	}
	r := RunChaos(spec)
	t.Logf("soak-63: %s windows=%v", r, r.Windows)
	if !r.Linearizable {
		t.Fatal("history not linearizable")
	}
	if !r.Recovered {
		t.Fatalf("no commit after the fault (longest stall %v)", r.LongestStall)
	}
	if r.Evictions == 0 || r.Readmissions == 0 {
		t.Fatalf("evictions=%d readmissions=%d; want both > 0", r.Evictions, r.Readmissions)
	}
	if r.Availability < 0.6 {
		t.Fatalf("availability %.2f; 63-node floor is 0.6", r.Availability)
	}
	var ref *ReplicaState
	for i := range r.Replicas {
		if !r.Replicas[i].Restarted {
			ref = &r.Replicas[i]
			break
		}
	}
	if ref == nil {
		t.Fatal("no never-restarted replica to anchor convergence")
	}
	for _, rep := range r.Replicas {
		if rep.Committed == ref.Committed && rep.StateDigest != ref.StateDigest {
			t.Fatalf("replica n%d state %x != reference n%d state %x at committed=%d",
				rep.Node, rep.StateDigest, ref.Node, ref.StateDigest, rep.Committed)
		}
		if !rep.Restarted && rep.Committed != ref.Committed {
			t.Fatalf("never-restarted replica n%d committed=%d, reference=%d; survivors must track the merge",
				rep.Node, rep.Committed, ref.Committed)
		}
	}
	r2 := RunChaos(spec)
	if r.Commits != r2.Commits || r.CommitDigest != r2.CommitDigest ||
		r.StateDigest != r2.StateDigest || r.Events != r2.Events {
		t.Fatalf("soak replay diverged: commits %d/%d state %x/%x events %d/%d",
			r.Commits, r2.Commits, r.StateDigest, r2.StateDigest, r.Events, r2.Events)
	}
}
