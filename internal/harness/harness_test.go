package harness

import (
	"testing"
	"time"
)

// windows returns (warmup, measure) scaled down under -short so the
// fluid-run tests fit a CI budget; local full runs keep the seed's
// original windows.
func windows(warm, meas time.Duration) (time.Duration, time.Duration) {
	if testing.Short() {
		return warm / 2, meas / 2
	}
	return warm, meas
}

func quickSpec(sys System) Spec {
	warm, meas := windows(200*time.Millisecond, 500*time.Millisecond)
	return Spec{
		System: sys, Groups: 3, PerGroup: 3, WriteRatio: 0.2,
		Seed: 3, Warmup: warm, Measure: meas,
	}
}

func TestCanopusFluidRun(t *testing.T) {
	r := Run(quickSpec(Canopus), 100_000)
	if r.Throughput < 80_000 {
		t.Fatalf("throughput %.0f < 80k at offered 100k", r.Throughput)
	}
	if r.Median <= 0 || r.Median > 10*time.Millisecond {
		t.Fatalf("median %v out of range", r.Median)
	}
	t.Logf("canopus: tput=%.0f median=%v p99=%v events=%d", r.Throughput, r.Median, r.P99, r.Events)
}

func TestEPaxosFluidRun(t *testing.T) {
	r := Run(quickSpec(EPaxos), 100_000)
	if r.Throughput < 80_000 {
		t.Fatalf("throughput %.0f < 80k at offered 100k", r.Throughput)
	}
	t.Logf("epaxos: tput=%.0f median=%v p99=%v events=%d", r.Throughput, r.Median, r.P99, r.Events)
}

func TestZabFluidRun(t *testing.T) {
	r := Run(quickSpec(Zab), 100_000)
	if r.Throughput < 80_000 {
		t.Fatalf("throughput %.0f < 80k at offered 100k", r.Throughput)
	}
	t.Logf("zab: tput=%.0f median=%v p99=%v events=%d", r.Throughput, r.Median, r.P99, r.Events)
}

func TestMultiDCCanopusRun(t *testing.T) {
	// WAN pipelines need most of the warmup to fill; shrink only the
	// measure window under -short.
	meas := time.Second
	if testing.Short() {
		meas = 500 * time.Millisecond
	}
	spec := Spec{
		System: Canopus, MultiDC: true, Groups: 3, PerGroup: 3, WriteRatio: 0.2,
		Seed: 3, Warmup: 1200 * time.Millisecond, Measure: meas,
	}
	r := Run(spec, 200_000)
	if r.Throughput < 150_000 {
		t.Fatalf("throughput %.0f < 150k at offered 200k", r.Throughput)
	}
	// WAN completion is bounded below by cross-DC round trips (~hundreds
	// of ms with pipelining at 3 DCs the worst RTT is 133ms).
	if r.Median < 50*time.Millisecond || r.Median > time.Second {
		t.Fatalf("median %v implausible for 3-DC WAN", r.Median)
	}
	t.Logf("canopus WAN: tput=%.0f median=%v events=%d", r.Throughput, r.Median, r.Events)
}
