package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"canopus/admin"
	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
	"canopus/internal/metrics"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// LiveChaos runs the live chaos campaign catalog: the simulator
// scenarios' fault families re-enacted on a real loopback cluster, with
// faults injected at the socket layer by the chaosnet per-link proxy
// fabric instead of the virtual clock. Where the sim catalog proves the
// protocol logic, these campaigns prove the deployment surface around
// it — transport redial and peer-state tracking, the admin gateway's
// liveness reporting, in-place node restart, and the operator loop of
// evict → bounce → readmit — all under wall-clock timeouts.
//
//   - leaf-partition-evict-readmit: a whole super-leaf is blackholed;
//     the surviving leaf majority evicts it within the 4×LeafTimeout
//     budget and keeps committing; after the heal the evicted members
//     learn their fate, restart in place as joiners, and the cluster
//     converges to one state digest.
//   - geo-wan-evict-readmit: the same campaign across five emulated
//     datacenters at mixed WAN latency classes (metro to transoceanic,
//     injected per directed link from the netsim GeoWANDelay matrix),
//     so the eviction and readmission budgets ride real geo round
//     trips over real sockets.
//   - asymmetric-partition-stall: one node's inbound links are cut
//     while its outbound links flow — the half-open failure only a
//     per-directed-link fabric can produce. The node wedges, its armed
//     stall detector degrades /healthz within the threshold, and the
//     heal restores both the wedged write and the health report.
//
// Every campaign fails the process (exit 1) on a violated budget or
// assertion, making `canopus-bench -exp live-chaos` a CI gate; -quick
// shrinks the WAN classes so the geo campaign fits smoke timescales.
func LiveChaos(o *Options) {
	type liveScenario struct {
		name string
		run  func(o *Options) (string, error)
	}
	scenarios := []liveScenario{
		{"leaf-partition-evict-readmit", liveLeafEvictReadmit},
		{"geo-wan-evict-readmit", liveGeoWANEvictReadmit},
		{"asymmetric-partition-stall", liveAsymmetricStall},
	}
	tbl := &metrics.Table{Header: []string{"scenario", "outcome"}}
	for _, s := range scenarios {
		start := time.Now()
		line, err := s.run(o)
		if err != nil {
			fail("live-chaos: %s: %v", s.name, err)
		}
		tbl.Add(s.name, fmt.Sprintf("%s (%v)", line, time.Since(start).Round(10*time.Millisecond)))
	}
	fmt.Fprint(o.Out, tbl.String())
	fmt.Fprintln(o.Out, "live-chaos: all campaigns within budget")
}

// waitLive polls cond at wall-clock granularity until it holds or the
// budget runs out.
func waitLive(budget time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", budget, what)
}

func liveDial(c *livecluster.Cluster, node int) (*client.Client, error) {
	return client.New(client.Config{Endpoints: []string{c.ClientAddr(node)}})
}

// evictCampaign parameterizes one partition→evict→heal→readmit run.
type evictCampaign struct {
	superLeaves [][]wire.NodeID
	node        core.Config
	victims     []wire.NodeID // the super-leaf to blackhole
	survivors   []wire.NodeID
	// delayClass, when set, is each super-leaf's WAN latency class: the
	// fabric injects the GeoWANDelay matrix before any load runs.
	delayClass []time.Duration
	seed       int64
}

// runEvictCampaign executes the shared eviction storyline and returns a
// one-line outcome summary.
func runEvictCampaign(o *Options, camp evictCampaign) (string, error) {
	// Evicted notices arrive on the machine turn; the buffered,
	// non-blocking relay keeps the callback from ever stalling a node.
	evicted := make(chan int, 64)
	c, err := livecluster.Start(livecluster.Config{
		SuperLeaves: camp.superLeaves,
		Node:        camp.node,
		Seed:        camp.seed,
		Chaos:       true,
		Admin:       true,
		Metrics:     metrics.NewRegistry(),
		OnEvicted: func(i int) {
			select {
			case evicted <- i:
			default:
			}
		},
	})
	if err != nil {
		return "", err
	}
	defer c.Stop(10 * time.Second)

	if camp.delayClass != nil {
		leafOf := make(map[wire.NodeID]int)
		for li, sl := range camp.superLeaves {
			for _, id := range sl {
				leafOf[id] = li
			}
		}
		c.Chaos().ApplyDelayMatrix(
			func(id wire.NodeID) int { return leafOf[id] },
			netsim.GeoWANDelay(camp.delayClass),
		)
	}

	ctx := context.Background()
	cl, err := liveDial(c, int(camp.survivors[0]))
	if err != nil {
		return "", err
	}
	defer cl.Close()
	for k := uint64(1); k <= 6; k++ {
		if err := cl.Put(ctx, k, []byte("pre")); err != nil {
			return "", fmt.Errorf("pre-partition put %d: %w", k, err)
		}
	}

	// Blackhole the victim leaf and immediately wedge one write inside
	// it through each member's (unproxied) client port: the cycles those
	// writes start keep retrying cross-leaf fetches, and the first retry
	// to land after the heal draws the dead-in-view Evicted notice — the
	// only way a partitioned member learns its fate (§6). The writes
	// themselves die with the eviction.
	c.Chaos().Partition(camp.survivors, camp.victims)
	cut := time.Now()
	for vi, v := range camp.victims {
		vcl, err := liveDial(c, int(v))
		if err != nil {
			return "", err
		}
		defer vcl.Close()
		_ = vcl.PutAsync(200+uint64(vi), []byte("doomed"))
	}
	post := make([]*client.Future, 0, 5)
	for k := uint64(100); k < 105; k++ {
		post = append(post, cl.PutAsync(k, []byte("post")))
	}

	// Eviction: the survivors' counters move once the leaf's slots
	// resolve to tombstones (atomic reads — safe off the machine turn).
	evictBudget := 4 * camp.node.LeafTimeout
	ref := int(camp.survivors[0])
	if err := waitLive(evictBudget+10*time.Second, "leaf eviction at the survivors", func() bool {
		return c.Node(ref).LeafEvictions() >= 1
	}); err != nil {
		return "", err
	}
	evictIn := time.Since(cut)
	if evictIn > evictBudget {
		return "", fmt.Errorf("eviction took %v, budget 4*LeafTimeout = %v", evictIn, evictBudget)
	}
	for i, f := range post {
		if _, err := f.Wait(ctx); err != nil {
			return "", fmt.Errorf("post-partition put %d: %w", i, err)
		}
	}

	// Heal; the wedged members' fetch retries now reach the survivors,
	// draw Evicted notices, and the operator hook bounces each back in
	// as an in-place joiner. The drain restarts ANY evicted node for the
	// rest of the campaign — under real wall clocks a healthy-but-slow
	// leaf can occasionally lose the eviction race too, and the operator
	// answer is the same bounce — but the cut leaf's members must be
	// among them.
	c.Chaos().Heal()
	healed := time.Now()
	var mu sync.Mutex
	restarted := map[int]bool{}
	var restartErr error
	drainDone := make(chan struct{})
	defer close(drainDone)
	go func() {
		for {
			select {
			case i := <-evicted:
				mu.Lock()
				if !restarted[i] && restartErr == nil {
					restarted[i] = true
					if err := c.RestartNode(i); err != nil {
						restartErr = fmt.Errorf("restart node %d: %w", i, err)
					}
				}
				mu.Unlock()
			case <-drainDone:
				return
			}
		}
	}()
	if err := waitLive(30*time.Second, "the cut leaf's members to learn their eviction", func() bool {
		mu.Lock()
		defer mu.Unlock()
		if restartErr != nil {
			return true
		}
		for _, v := range camp.victims {
			if !restarted[int(v)] {
				return false
			}
		}
		return true
	}); err != nil {
		return "", err
	}
	mu.Lock()
	err = restartErr
	extra := len(restarted) - len(camp.victims)
	mu.Unlock()
	if err != nil {
		return "", err
	}

	// Readmission and convergence, observed through the public admin
	// surface: every node's digest endpoint — including the restarted
	// joiners' — must agree on one non-zero state digest.
	if err := waitLive(30*time.Second, "leaf readmission at the survivors", func() bool {
		return c.Node(ref).LeafReadmissions() >= 1
	}); err != nil {
		return "", err
	}
	var state uint64
	if err := waitLive(30*time.Second, "state-digest convergence", func() bool {
		d, err := admin.New(c.AdminAddr(ref)).Digest(ctx)
		if err != nil || d.State == 0 {
			return false
		}
		for i := 0; i < c.NumNodes(); i++ {
			di, err := admin.New(c.AdminAddr(i)).Digest(ctx)
			if err != nil || di.State != d.State {
				return false
			}
		}
		state = d.State
		return true
	}); err != nil {
		return "", err
	}
	readmitIn := time.Since(healed)

	// The rejoined member serves a post-partition write.
	vcl, err := liveDial(c, int(camp.victims[0]))
	if err != nil {
		return "", err
	}
	defer vcl.Close()
	if v, err := vcl.Get(ctx, 104); err != nil || string(v) != "post" {
		return "", fmt.Errorf("Get(104) via rejoined node = %q, %v", v, err)
	}
	line := fmt.Sprintf("evicted in %v, readmitted in %v, digest %016x on all %d nodes",
		evictIn.Round(time.Millisecond), readmitIn.Round(time.Millisecond), state, c.NumNodes())
	if extra > 0 {
		line += fmt.Sprintf(" (+%d bystander evictions bounced)", extra)
	}
	return line, nil
}

// liveLeafEvictReadmit is the LAN-scale eviction campaign: three
// two-node super-leaves on loopback, leaf 2 blackholed.
func liveLeafEvictReadmit(o *Options) (string, error) {
	return runEvictCampaign(o, evictCampaign{
		superLeaves: [][]wire.NodeID{{0, 1}, {2, 3}, {4, 5}},
		node: core.Config{
			CycleInterval: 2 * time.Millisecond,
			TickInterval:  2 * time.Millisecond,
			FetchTimeout:  50 * time.Millisecond,
			LeafTimeout:   250 * time.Millisecond,
		},
		victims:   []wire.NodeID{4, 5},
		survivors: []wire.NodeID{0, 1, 2, 3},
		seed:      o.Seed + 21,
	})
}

// liveGeoWANEvictReadmit is the geo-scale campaign: five two-node
// super-leaves standing in for five datacenters spanning the WAN
// latency classes, the transoceanic DC blackholed. Timeout budgets
// scale with the worst one-way delay exactly as in the simulator's geo
// scenario: LeafTimeout must sit well above a pipelined cycle's few WAN
// round trips, FetchTimeout above the worst RTT. Quick mode divides the
// classes by ten so the campaign fits CI smoke timescales while keeping
// the same 150:1 spread between the nearest and farthest DC — but the
// timeout budgets shrink less than the latencies: wall-clock noise
// (scheduler jitter, GC, the proxy hop itself) does not shrink with
// them, and a LeafTimeout too close to a stalled cycle's resolution
// time can evict a healthy-but-slow leaf.
func liveGeoWANEvictReadmit(o *Options) (string, error) {
	node := core.Config{
		CycleInterval: 20 * time.Millisecond,
		TickInterval:  5 * time.Millisecond,
		FetchTimeout:  600 * time.Millisecond,
		LeafTimeout:   2 * time.Second,
	}
	div := time.Duration(1)
	if o.Quick {
		div = 10
		node.CycleInterval = 5 * time.Millisecond
		node.FetchTimeout = 100 * time.Millisecond
		node.LeafTimeout = 600 * time.Millisecond
	}
	classes := []time.Duration{
		netsim.MetroOneWay / div,
		netsim.MetroOneWay / div,
		netsim.RegionalOneWay / div,
		netsim.ContinentalOneWay / div,
		netsim.IntercontinentalOneWay / div,
	}
	return runEvictCampaign(o, evictCampaign{
		superLeaves: [][]wire.NodeID{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}},
		node:        node,
		victims:     []wire.NodeID{8, 9},
		survivors:   []wire.NodeID{0, 1, 2, 3, 4, 5, 6, 7},
		delayClass:  classes,
		seed:        o.Seed + 22,
	})
}

// liveAsymmetricStall cuts only the inbound direction of a minority
// node's links: its traffic still reaches the majority, but every fetch
// reply falls into the blackhole. The wedged node's armed stall
// detector must flip its /healthz to "degraded: stalled" within the
// threshold (plus detector granularity), and the heal must release both
// the wedged write and the health report — no restart anywhere.
func liveAsymmetricStall(o *Options) (string, error) {
	threshold := 200 * time.Millisecond
	c, err := livecluster.Start(livecluster.Config{
		SuperLeaves: [][]wire.NodeID{{0, 1}, {2}},
		Node: core.Config{
			CycleInterval:  2 * time.Millisecond,
			TickInterval:   2 * time.Millisecond,
			FetchTimeout:   50 * time.Millisecond,
			StallThreshold: threshold,
		},
		Seed:  o.Seed + 23,
		Chaos: true,
		Admin: true,
	})
	if err != nil {
		return "", err
	}
	defer c.Stop(10 * time.Second)

	ctx := context.Background()
	cl, err := liveDial(c, 0)
	if err != nil {
		return "", err
	}
	defer cl.Close()
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		return "", err
	}

	ac := admin.New(c.AdminAddr(2))
	if h, err := ac.Health(ctx); err != nil || h.Status != "ok" {
		return "", fmt.Errorf("pre-fault health = %+v, %v", h, err)
	}

	// Cut only majority→minority: node 2 keeps sending (so nothing
	// looks crashed from the outside) but hears no replies. A write
	// through its unproxied client port starts the cycle it can never
	// commit — the detector needs local evidence of wedged progress.
	c.Chaos().PartitionDirected([]wire.NodeID{0, 1}, []wire.NodeID{2})
	cut := time.Now()
	cl2, err := liveDial(c, 2)
	if err != nil {
		return "", err
	}
	defer cl2.Close()
	f := cl2.PutAsync(2, []byte("b"))
	if err := waitLive(10*threshold+5*time.Second, "node 2 /healthz degraded", func() bool {
		h, err := ac.Health(ctx)
		return err == nil && h.Status == "degraded: stalled"
	}); err != nil {
		return "", err
	}
	detectIn := time.Since(cut)
	if s, err := ac.Status(ctx); err != nil || s.Degraded != "stalled" {
		return "", fmt.Errorf("degraded /status = %+v, %v", s, err)
	}

	c.Chaos().Heal()
	if _, err := f.Wait(ctx); err != nil {
		return "", fmt.Errorf("wedged write across heal: %w", err)
	}
	if err := waitLive(10*time.Second, "node 2 /healthz recovery", func() bool {
		h, err := ac.Health(ctx)
		return err == nil && h.Status == "ok"
	}); err != nil {
		return "", err
	}
	return fmt.Sprintf("stall detected in %v (threshold %v), recovered after heal",
		detectIn.Round(time.Millisecond), threshold), nil
}
