package harness

import (
	"time"

	"canopus/internal/core"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Scenario catalog: the named chaos experiments the repo regression-
// tests. The paper evaluates only failure-free executions and itself
// concedes Canopus stalls when a whole super-leaf fails (§6); these
// scenarios pin down exactly what the implementation does under the
// failures RCanopus (arXiv:1810.09300) was written to address, within
// this repo's crash-stop model:
//
//   - minority-crash: a super-leaf loses one of three members and keeps
//     committing after the failure cut.
//   - representative-crash-mid-cycle: the fetch-responsible
//     representative dies with a cycle in flight; survivors take over
//     its fetch assignment and drive the cycle to commit.
//   - wan-partition-heal: a datacenter is cut off; commits stall
//     globally (stall semantics, §6) and resume after the heal.
//   - flapping-link: the inter-rack path degrades repeatedly (latency
//     spikes + 30% loss); fetch retries ride it out with no stall longer
//     than the flap period.
//   - rolling-restarts: nodes crash with total state loss and rejoin
//     through the §4.6 join protocol, one after another.
//   - power-loss-durable: every node crashes at the same instant and
//     restarts from its durable state (group-commit WAL + snapshots);
//     the cluster resumes committing where it left off.
//
// The leaf-eviction scenarios run with Node.LeafTimeout set, replacing
// the stall-forever answer with the RCanopus-style degraded mode
// (internal/core leaf.go): the survivors resolve the dead super-leaf's
// slots to tombstones, commit its members' Leaves, and keep serving;
// evicted nodes restart through the join protocol and re-admit the leaf:
//
//   - leaf-partition-evict: a whole super-leaf is cut off, evicted after
//     LeafTimeout, and — once the partition heals — bounced back in as
//     joiners.
//   - leaf-majority-crash: a super-leaf loses its broadcast quorum; the
//     stalled survivor is evicted with its leaf and everyone re-enters
//     through the join protocol.
//   - leaf-power-loss-durable: a whole rack loses power in a Durable
//     deployment. The eviction invalidates the rack's cold-start recovery
//     claim, so the restarted nodes recover their disks, learn they were
//     evicted, and re-enter state-less through the join protocol.
//   - geo-leaf-evict-readmit: five datacenters at mixed WAN latency
//     classes (metro to transoceanic); the farthest DC is cut off,
//     evicted across real geo delays, and readmitted after the heal.
//
// Every scenario's history must check out linearizable, and replaying
// the same seed + plan must reproduce the commit log bit-identically.

// Scenario is one named chaos experiment.
type Scenario struct {
	Name string
	Spec ChaosSpec
}

// ids is a convenience for fault-plan node sets.
func ids(ns ...int) []wire.NodeID {
	out := make([]wire.NodeID, len(ns))
	for i, n := range ns {
		out[i] = wire.NodeID(n)
	}
	return out
}

// ScenarioMinorityCrash crashes one member of super-leaf 1 (of three
// racks) with no restart. The failure cut must commit its Leave and
// service must continue on the survivors.
func ScenarioMinorityCrash(seed int64) Scenario {
	return Scenario{
		Name: "minority-crash",
		Spec: ChaosSpec{
			Groups: 3, PerGroup: 3, Seed: seed,
			Duration: 5 * time.Second,
			FaultAt:  1500 * time.Millisecond,
			Faults: netsim.FaultPlan{
				Crashes: []netsim.CrashFault{{At: 1500 * time.Millisecond, Node: 4}},
			},
		},
	}
}

// ScenarioRepresentativeCrashMidCycle kills node 0 — as the lowest ID
// it is always a representative of super-leaf 0 — under continuous load,
// so cycles are guaranteed to be in flight at the crash. A latency fault
// straddling the crash keeps the victim's remote fetch unresolved when
// it dies, forcing the surviving representatives' takeover path.
func ScenarioRepresentativeCrashMidCycle(seed int64) Scenario {
	rack0, rack1 := ids(0, 1, 2), ids(3, 4, 5)
	return Scenario{
		Name: "representative-crash-mid-cycle",
		Spec: ChaosSpec{
			Groups: 2, PerGroup: 3, Seed: seed,
			Duration: 5 * time.Second,
			FaultAt:  1200 * time.Millisecond,
			Node:     core.Config{FetchTimeout: 100 * time.Millisecond},
			Faults: netsim.FaultPlan{
				Latencies: []netsim.LatencyFault{
					{At: 1100 * time.Millisecond, Until: 1600 * time.Millisecond,
						From: rack0, To: rack1, Extra: 150 * time.Millisecond},
					{At: 1100 * time.Millisecond, Until: 1600 * time.Millisecond,
						From: rack1, To: rack0, Extra: 150 * time.Millisecond},
				},
				Crashes: []netsim.CrashFault{{At: 1200 * time.Millisecond, Node: 0}},
			},
		},
	}
}

// ScenarioWANPartitionHeal cuts datacenter 0 off from the other two for
// one second. No super-leaf loses quorum, so nothing stalls permanently;
// commits pause during the cut (remote branch states are unreachable)
// and resume after the heal.
func ScenarioWANPartitionHeal(seed int64) Scenario {
	dc0, rest := ids(0, 1, 2), ids(3, 4, 5, 6, 7, 8)
	return Scenario{
		Name: "wan-partition-heal",
		Spec: ChaosSpec{
			MultiDC: true, Groups: 3, PerGroup: 3, Seed: seed,
			Duration:  6 * time.Second,
			FaultAt:   2500 * time.Millisecond, // the heal: recovery is measured from here
			OpTimeout: 2 * time.Second,
			Node: core.Config{
				CycleInterval: 5 * time.Millisecond,
				FetchTimeout:  300 * time.Millisecond,
			},
			Faults: netsim.FaultPlan{
				Partitions: []netsim.PartitionFault{{
					At: 1500 * time.Millisecond, Heal: 2500 * time.Millisecond,
					A: dc0, B: rest,
				}},
			},
		},
	}
}

// ScenarioFlappingLink repeatedly degrades the rack0↔rack1 path: five
// 250ms windows of +20ms latency and 30% packet loss, 500ms apart.
// Intra-super-leaf traffic is untouched, so failure detectors stay
// quiet; cross-leaf fetch retries absorb the loss.
func ScenarioFlappingLink(seed int64) Scenario {
	rack0, rack1 := ids(0, 1, 2), ids(3, 4, 5)
	plan := netsim.FaultPlan{}
	for k := 0; k < 5; k++ {
		at := time.Duration(1000+500*k) * time.Millisecond
		until := at + 250*time.Millisecond
		plan.Latencies = append(plan.Latencies,
			netsim.LatencyFault{At: at, Until: until, From: rack0, To: rack1, Extra: 20 * time.Millisecond},
			netsim.LatencyFault{At: at, Until: until, From: rack1, To: rack0, Extra: 20 * time.Millisecond},
		)
		plan.Drops = append(plan.Drops,
			netsim.DropFault{At: at, Until: until, From: rack0, To: rack1, Prob: 0.3},
			netsim.DropFault{At: at, Until: until, From: rack1, To: rack0, Prob: 0.3},
		)
	}
	return Scenario{
		Name: "flapping-link",
		Spec: ChaosSpec{
			Groups: 2, PerGroup: 3, Seed: seed,
			Duration: 5 * time.Second,
			Node:     core.Config{FetchTimeout: 50 * time.Millisecond},
			Faults:   plan,
		},
	}
}

// ScenarioRollingRestarts crashes two nodes in different super-leaves,
// each with total state loss, and restarts them through the join
// protocol before the next one goes down.
func ScenarioRollingRestarts(seed int64) Scenario {
	return Scenario{
		Name: "rolling-restarts",
		Spec: ChaosSpec{
			Groups: 2, PerGroup: 3, Seed: seed,
			Duration: 8 * time.Second,
			FaultAt:  time.Second,
			Faults: netsim.FaultPlan{
				Crashes: []netsim.CrashFault{
					{At: time.Second, Node: 1, RestartAt: 3 * time.Second},
					{At: 4 * time.Second, Node: 4, RestartAt: 6 * time.Second},
				},
			},
		},
	}
}

// ScenarioPowerLoss crashes all six nodes at the same instant — a
// full-cluster power loss — and restarts them from their per-node
// durable disks, slightly staggered so replicas come back at different
// WAL watermarks and exercise root catch-up. The tight snapshot cadence
// makes each restart recover a snapshot baseline plus a WAL tail rather
// than pure replay. Commits must resume after the outage and the
// completed-operation history must stay linearizable across it.
func ScenarioPowerLoss(seed int64) Scenario {
	plan := netsim.FaultPlan{}
	for i := 0; i < 6; i++ {
		plan.Crashes = append(plan.Crashes, netsim.CrashFault{
			At: 2 * time.Second, Node: wire.NodeID(i),
			RestartAt: time.Duration(3500+100*i) * time.Millisecond,
		})
	}
	return Scenario{
		Name: "power-loss-durable",
		Spec: ChaosSpec{
			Groups: 2, PerGroup: 3, Seed: seed,
			Duration:       8 * time.Second,
			FaultAt:        2 * time.Second,
			Durable:        true,
			SnapshotCycles: 8,
			Node:           core.Config{FetchTimeout: 50 * time.Millisecond},
			Faults:         plan,
		},
	}
}

// evictionNode is the protocol tuning the leaf scenarios share: leaf
// eviction armed at 600ms (multiples of the broadcast failure-detection
// settle time at the chaos default 1ms tick), fetch retries fast enough
// to notice the dead leaf well inside that.
func evictionNode() core.Config {
	return core.Config{
		LeafTimeout:  600 * time.Millisecond,
		FetchTimeout: 100 * time.Millisecond,
	}
}

// ScenarioLeafPartitionEvict cuts super-leaf 2 (of three racks) off for
// two seconds. Commits stall when the cut leaf's branch state becomes
// unreachable, resume once the survivors evict it (~LeafTimeout after
// the cut), and return to full strength after the heal: the partitioned
// nodes learn of their eviction from the dead-sender gate, restart as
// joiners, and re-admit the leaf.
func ScenarioLeafPartitionEvict(seed int64) Scenario {
	leaf2, rest := ids(6, 7, 8), ids(0, 1, 2, 3, 4, 5)
	return Scenario{
		Name: "leaf-partition-evict",
		Spec: ChaosSpec{
			Groups: 3, PerGroup: 3, Seed: seed,
			Duration: 7 * time.Second,
			FaultAt:  1500 * time.Millisecond,
			Node:     evictionNode(),
			Faults: netsim.FaultPlan{
				Partitions: []netsim.PartitionFault{
					netsim.LeafPartition(1500*time.Millisecond, 3500*time.Millisecond, leaf2, rest),
				},
			},
		},
	}
}

// ScenarioLeafMajorityCrash crash-stops two of super-leaf 2's three
// members: the leaf loses its reliable-broadcast quorum, so even the
// surviving member can make no progress. The survivors' eviction round
// commits the whole leaf's Leaves; the stalled survivor is told it was
// evicted and bounces into a joiner, the crashed pair restart as joiners
// at 4s, and the leaf is re-admitted.
func ScenarioLeafMajorityCrash(seed int64) Scenario {
	return Scenario{
		Name: "leaf-majority-crash",
		Spec: ChaosSpec{
			Groups: 3, PerGroup: 3, Seed: seed,
			Duration: 8 * time.Second,
			FaultAt:  1500 * time.Millisecond,
			Node:     evictionNode(),
			Faults: netsim.FaultPlan{
				Crashes: netsim.LeafMajorityCrash(1500*time.Millisecond, ids(6, 7, 8), 4*time.Second),
			},
		},
	}
}

// ScenarioLeafPowerLossDurable kills a whole rack's power in a Durable
// deployment. The cluster evicts the dark leaf and keeps committing, so
// by the time the rack's nodes restart and recover their disks their
// Leaves are long committed — the single-node cold-start recovery claim
// no longer holds. They must discover the eviction (dead-sender gate),
// discard the recovered state, and re-enter through the join protocol.
func ScenarioLeafPowerLossDurable(seed int64) Scenario {
	return Scenario{
		Name: "leaf-power-loss-durable",
		Spec: ChaosSpec{
			Groups: 3, PerGroup: 3, Seed: seed,
			Duration:       8 * time.Second,
			FaultAt:        2 * time.Second,
			Durable:        true,
			SnapshotCycles: 8,
			Node:           evictionNode(),
			Faults: netsim.FaultPlan{
				Crashes: netsim.LeafPowerLoss(2*time.Second, ids(6, 7, 8), 4*time.Second),
			},
		},
	}
}

// ScenarioGeoLeafEvictReadmit is the geo-scale campaign: five
// datacenters spanning the WAN latency classes (metro neighbor up to a
// transoceanic site), one super-leaf each. The farthest DC is cut off
// for three seconds; eviction quorum, tombstone resolution and
// readmission all ride real continental round trips, so the timeout and
// retry budgets are exercised at geo scale rather than LAN scale.
func ScenarioGeoLeafEvictReadmit(seed int64) Scenario {
	// GeoWANDelay yields one-way delays; doubling the class values makes
	// the same max-of-classes construction yield the RTT matrix WANRTT
	// expects (buildTopo halves it back).
	rtt := netsim.GeoWANDelay([]time.Duration{
		2 * netsim.MetroOneWay,
		2 * netsim.MetroOneWay,
		2 * netsim.RegionalOneWay,
		2 * netsim.ContinentalOneWay,
		2 * netsim.IntercontinentalOneWay,
	})
	dc4, rest := ids(12, 13, 14), ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	return Scenario{
		Name: "geo-leaf-evict-readmit",
		Spec: ChaosSpec{
			MultiDC: true, Groups: 5, PerGroup: 3, Seed: seed,
			WANRTT:    rtt,
			Duration:  12 * time.Second,
			FaultAt:   2 * time.Second,
			OpTimeout: 2 * time.Second,
			// Timeout budgets scale with the intercontinental RTT
			// (150ms): a pipelined cycle's commit latency is a few WAN
			// round trips, so LeafTimeout must sit well above that or
			// healthy-but-slow leaves get spuriously evicted, and
			// FetchTimeout must exceed the worst RTT or fetch retries
			// churn without ever being answerable.
			Node: core.Config{
				CycleInterval: 20 * time.Millisecond,
				LeafTimeout:   2 * time.Second,
				FetchTimeout:  600 * time.Millisecond,
			},
			Faults: netsim.FaultPlan{
				Partitions: []netsim.PartitionFault{
					netsim.LeafPartition(2*time.Second, 6*time.Second, dc4, rest),
				},
			},
		},
	}
}

// Scenarios returns the full catalog at one seed.
func Scenarios(seed int64) []Scenario {
	return []Scenario{
		ScenarioMinorityCrash(seed),
		ScenarioRepresentativeCrashMidCycle(seed),
		ScenarioWANPartitionHeal(seed),
		ScenarioFlappingLink(seed),
		ScenarioRollingRestarts(seed),
		ScenarioPowerLoss(seed),
		ScenarioLeafPartitionEvict(seed),
		ScenarioLeafMajorityCrash(seed),
		ScenarioLeafPowerLossDurable(seed),
		ScenarioGeoLeafEvictReadmit(seed),
	}
}

// QuickScenarios is the -short subset: one fast representative of each
// fault family (a crash, a WAN partition, and a leaf eviction), chosen
// for low virtual duration and small topologies. Tests that run the
// catalog under -short take this slice instead of maintaining their own
// hard-coded subsets, so new catalog entries get smoke coverage by
// updating one place.
func QuickScenarios(seed int64) []Scenario {
	return []Scenario{
		ScenarioMinorityCrash(seed),
		ScenarioWANPartitionHeal(seed),
		ScenarioLeafPartitionEvict(seed),
	}
}
