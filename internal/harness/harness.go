// Package harness assembles simulated deployments of Canopus, EPaxos
// and Zab/ZooKeeper, drives them with the paper's workloads, and
// regenerates each table and figure of the evaluation section (§8).
// cmd/canopus-bench is its CLI.
package harness

import (
	"time"

	"canopus/internal/core"
	"canopus/internal/engine"
	"canopus/internal/epaxos"
	"canopus/internal/lot"
	"canopus/internal/netsim"
	"canopus/internal/wire"
	"canopus/internal/workload"
	"canopus/internal/zab"
)

// System selects the protocol under test.
type System uint8

const (
	// Canopus is the paper's contribution.
	Canopus System = iota
	// CanopusFlat is the topology-oblivious ablation: every node in one
	// super-leaf, i.e. dissemination degenerates to all-to-all reliable
	// broadcast with no tree aggregation.
	CanopusFlat
	// EPaxos is the decentralized baseline.
	EPaxos
	// Zab is the ZooKeeper baseline (leader + voters + observers).
	Zab
	// ZKCanopus is ZooKeeper with Zab replaced by Canopus (§8.1.2),
	// modeled as Canopus with the znode-tree apply cost.
	ZKCanopus
)

func (s System) String() string {
	switch s {
	case Canopus:
		return "Canopus"
	case CanopusFlat:
		return "Canopus-flat"
	case EPaxos:
		return "EPaxos"
	case Zab:
		return "ZooKeeper"
	case ZKCanopus:
		return "ZKCanopus"
	}
	return "?"
}

// Spec describes one deployment + workload combination.
type Spec struct {
	System System

	// Topology: MultiDC picks the WAN testbed (DCs × PerGroup nodes,
	// Table 1 delays); otherwise a single datacenter with Racks ×
	// PerGroup nodes (the paper's 3-rack cluster).
	MultiDC  bool
	Groups   int // racks or datacenters
	PerGroup int
	WANRTT   [][]time.Duration // inter-DC round trips (Table 1); nil = paper's

	WriteRatio float64

	// Canopus knobs.
	CycleInterval time.Duration // 0 = self-clocked
	MaxInFlight   int
	FetchTimeout  time.Duration
	NumReps       int
	SwitchBcast   bool // hardware-assisted broadcast ablation

	// EPaxos knobs.
	EPaxosBatch time.Duration

	// Zab knobs.
	ZabVoters int
	ZabBatch  time.Duration

	// Cost model; zero-valued fields take per-system defaults.
	Costs     netsim.CostParams
	ClientCPU time.Duration

	// Faults is the deterministic fault schedule injected into the run
	// (empty = failure-free, the paper's setting). Canopus-family nodes
	// with a RestartAt come back through the §4.6 join protocol; the
	// baselines' crashed nodes stay down.
	Faults netsim.FaultPlan

	Seed    int64
	Warmup  time.Duration
	Measure time.Duration
}

func (s *Spec) fill() {
	if s.Groups == 0 {
		s.Groups = 3
	}
	if s.PerGroup == 0 {
		s.PerGroup = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Warmup == 0 {
		if s.MultiDC {
			s.Warmup = 2 * time.Second
		} else {
			s.Warmup = 500 * time.Millisecond
		}
	}
	if s.Measure == 0 {
		if s.MultiDC {
			s.Measure = 3 * time.Second
		} else {
			s.Measure = 2 * time.Second
		}
	}
	if s.EPaxosBatch == 0 {
		s.EPaxosBatch = 5 * time.Millisecond
	}
	if s.ZabVoters == 0 {
		s.ZabVoters = 5
	}
	if s.ZabBatch == 0 {
		s.ZabBatch = 2 * time.Millisecond
	}
	if s.MaxInFlight == 0 {
		if s.MultiDC {
			// Deep pipeline: ~RTT/cycle plus slack (§7.1).
			s.MaxInFlight = 512
		} else {
			// Shallow pipeline: keeps queueing delay at saturation well
			// under the paper's 10ms completion-time criterion. Throughput
			// is unaffected: batches grow with load, not the cycle rate.
			s.MaxInFlight = 4
		}
	}
	if s.CycleInterval == 0 {
		if s.MultiDC {
			s.CycleInterval = 5 * time.Millisecond // the paper's setting
		} else {
			s.CycleInterval = time.Millisecond
		}
	}
	if s.FetchTimeout == 0 {
		if s.MultiDC {
			s.FetchTimeout = 800 * time.Millisecond
		} else {
			s.FetchTimeout = 25 * time.Millisecond
		}
	}
	if s.ClientCPU == 0 {
		s.ClientCPU = 2 * time.Microsecond
	}
	if s.Costs == (netsim.CostParams{}) {
		s.Costs = SystemCosts(s.System)
	}
}

// SystemCosts returns the per-system CPU cost calibration. The common
// terms model network-stack and batch-handling path lengths; PerReqRecv
// captures what each implementation does per command inside a received
// message: Canopus merges into an ordered list (cheap); EPaxos maintains
// per-command dependency state; ZooKeeper runs its transaction pipeline
// on every write at every replica that processes it.
func SystemCosts(s System) netsim.CostParams {
	c := netsim.CostParams{
		PerMsgSend:  3 * time.Microsecond,
		PerMsgRecv:  5 * time.Microsecond,
		PerByteSend: time.Nanosecond,
		PerByteRecv: time.Nanosecond,
		PerTimer:    time.Microsecond,
	}
	switch s {
	case EPaxos:
		c.PerReqRecv = 500 * time.Nanosecond
	case Zab:
		// ZooKeeper's full transaction pipeline runs per write wherever
		// the txn is processed (leader, follower, observer).
		c.PerReqRecv = 20 * time.Microsecond
	case ZKCanopus:
		// znode-tree apply is heavier than raw KV merging but avoids the
		// ZooKeeper pipeline.
		c.PerReqRecv = 250 * time.Nanosecond
	default:
		c.PerReqRecv = 150 * time.Nanosecond
	}
	return c
}

// Result is one measured run.
type Result struct {
	Offered    float64 // requests/second offered
	Throughput float64 // requests/second completed in the window
	Median     time.Duration
	P95        time.Duration
	P99        time.Duration
	MedianRead,
	MedianWrite time.Duration
	Events uint64 // simulation events executed (cost indicator)
}

// target adapters.

type canopusTarget struct{ n *core.Node }

func (t canopusTarget) Offer(reads, writes, readBytes, writeBytes uint32, samples []wire.ArrivalSample) {
	// Canopus never puts reads on the wire: readBytes is dropped.
	t.n.SubmitFluid(reads, writes, writeBytes, samples)
}

type epaxosTarget struct{ r *epaxos.Replica }

func (t epaxosTarget) Offer(reads, writes, readBytes, writeBytes uint32, samples []wire.ArrivalSample) {
	// EPaxos replicates reads too.
	t.r.SubmitFluid(reads, writes, readBytes+writeBytes, samples)
}

type zabTarget struct{ n *zab.Node }

func (t zabTarget) Offer(reads, writes, readBytes, writeBytes uint32, samples []wire.ArrivalSample) {
	// Reads never reach Zab (workload.LocalReads); only write samples
	// remain in samples.
	t.n.SubmitFluid(writes, writeBytes, samples)
}

// Run executes one deployment at one offered rate and reports measured
// completion times.
func Run(spec Spec, rate float64) Result {
	spec.fill()
	sim := netsim.NewSim()
	topo := buildTopo(spec)
	runner := netsim.NewRunner(sim, topo, spec.Costs, spec.Seed)

	end := spec.Warmup + spec.Measure
	rec := &workload.Recorder{WarmFrom: spec.Warmup, ArriveUntil: end}

	targets, restart := buildSystem(spec, sim, topo, runner, rec)
	if !spec.Faults.Empty() {
		runner.InstallFaults(spec.Faults, restart)
	}

	wcfg := workload.Config{
		Rate:       rate,
		WriteRatio: spec.WriteRatio,
		ClientCPU:  spec.ClientCPU,
		LocalReads: spec.System == Zab,
		Seed:       spec.Seed + 7,
	}
	gen := workload.NewGenerator(wcfg, sim, runner, targets, rec)
	gen.Start(end)

	// Run past the end of generation so requests in flight at the
	// window's close drain and are counted (arrival-time filtering).
	drain := spec.Warmup
	if drain < time.Second && spec.MultiDC {
		drain = time.Second
	}
	sim.RunUntil(end + drain)

	all := rec.All()
	res := Result{
		Offered:    rate,
		Throughput: float64(all.Count()) / spec.Measure.Seconds(),
		Median:     all.Median(),
		P95:        all.Quantile(0.95),
		P99:        all.Quantile(0.99),
		Events:     sim.Steps(),
	}
	res.MedianRead = rec.Reads.Median()
	res.MedianWrite = rec.Writes.Median()
	return res
}

func buildTopo(spec Spec) *netsim.Topology {
	if !spec.MultiDC {
		return netsim.SingleDC(spec.Groups, spec.PerGroup, netsim.Params{})
	}
	rtt := spec.WANRTT
	if rtt == nil {
		rtt = Table1RTT(spec.Groups)
	}
	oneway := make([][]time.Duration, spec.Groups)
	for i := range oneway {
		oneway[i] = make([]time.Duration, spec.Groups)
		for j := range oneway[i] {
			if i != j {
				oneway[i][j] = rtt[i][j] / 2
			}
		}
	}
	return netsim.MultiDC(spec.Groups, spec.PerGroup, netsim.Params{WANDelay: oneway})
}

// buildSystem instantiates the protocol nodes and returns one workload
// target per node, plus a restart factory for fault plans (nil for
// systems without a modeled join protocol).
func buildSystem(spec Spec, sim *netsim.Sim, topo *netsim.Topology, runner *netsim.Runner, rec *workload.Recorder) ([]workload.Target, func(wire.NodeID) engine.Machine) {
	n := topo.NumNodes()
	targets := make([]workload.Target, n)
	switch spec.System {
	case Canopus, CanopusFlat, ZKCanopus:
		var sls [][]wire.NodeID
		if spec.System == CanopusFlat {
			all := make([]wire.NodeID, n)
			for i := range all {
				all[i] = wire.NodeID(i)
			}
			sls = [][]wire.NodeID{all}
		} else {
			for g := 0; g < spec.Groups; g++ {
				sls = append(sls, topo.RackMembers(g))
			}
		}
		tree, err := lot.New(lot.Config{SuperLeaves: sls})
		if err != nil {
			panic(err)
		}
		makeNode := func(id wire.NodeID, joiner bool) *core.Node {
			cfg := core.Config{
				Tree:          tree,
				Self:          id,
				CycleInterval: spec.CycleInterval,
				MaxInFlight:   spec.MaxInFlight,
				FetchTimeout:  spec.FetchTimeout,
				NumReps:       spec.NumReps,
			}
			if spec.SwitchBcast {
				cfg.Broadcast = core.BroadcastSwitch
			}
			cbs := core.Callbacks{
				OnCommit: func(cycle uint64, order []*wire.Batch) {
					now := sim.Now()
					for _, b := range order {
						if b.Origin == id {
							rec.RecordBatch(now, b)
						}
					}
				},
			}
			if joiner {
				return core.NewJoiner(cfg, nil, cbs)
			}
			return core.NewNode(cfg, nil, cbs)
		}
		for i := 0; i < n; i++ {
			id := wire.NodeID(i)
			node := makeNode(id, false)
			runner.Register(id, node)
			targets[i] = canopusTarget{n: node}
		}
		return targets, func(id wire.NodeID) engine.Machine {
			node := makeNode(id, true)
			targets[id] = canopusTarget{n: node}
			return node
		}
	case EPaxos:
		peers := make([]wire.NodeID, n)
		for i := range peers {
			peers[i] = wire.NodeID(i)
		}
		for i := 0; i < n; i++ {
			id := wire.NodeID(i)
			rep := epaxos.New(epaxos.Config{
				Self: id, Peers: peers, BatchDuration: spec.EPaxosBatch,
			}, nil, epaxos.Callbacks{
				OnCommit: func(ref wire.InstanceRef, b *wire.Batch) {
					rec.RecordBatch(sim.Now(), b)
				},
			})
			runner.Register(id, rep)
			targets[i] = epaxosTarget{r: rep}
		}
		return targets, nil
	case Zab:
		voters := spec.ZabVoters
		if voters > n {
			voters = n
		}
		all := make([]wire.NodeID, n)
		for i := range all {
			all[i] = wire.NodeID(i)
		}
		for i := 0; i < n; i++ {
			id := wire.NodeID(i)
			node := zab.New(zab.Config{
				Self: id, Leader: 0, Voters: all[:voters], All: all,
				BatchDuration: spec.ZabBatch,
			}, nil, zab.Callbacks{
				OnDeliver: func(zxid uint64, b *wire.Batch) {
					if b.Origin == id {
						rec.RecordBatch(sim.Now(), b)
					}
				},
			})
			runner.Register(id, node)
			targets[i] = zabTarget{n: node}
		}
	}
	return targets, nil
}
