package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
	"canopus/internal/metrics"
	"canopus/internal/wire"
	"canopus/internal/workload"
)

// Live benchmarks the real-socket path: an in-process loopback cluster
// of transport.Runner nodes (the same code cmd/canopus-server runs — no
// simulator anywhere), driven through the binary client protocol by the
// workload package's closed- and open-loop generators.
//
// Unlike the virtual-time experiments, these numbers depend on the host;
// the committed BENCH_live.json baseline is regenerated with
//
//	go run ./cmd/canopus-bench -exp live -quick -json BENCH_live.json
//
// and CI's live-smoke job gates only its schedule-anchored metrics (see
// cmd/benchdiff).
//
// Live also doubles as the end-to-end smoke check: it verifies complete
// reply accounting (every accepted request answered) and a clean
// graceful shutdown, and exits non-zero otherwise.
func Live(o *Options) {
	type clusterShape struct {
		label string
		sls   [][]wire.NodeID
	}
	shapes := []clusterShape{
		{"3 nodes / 1 super-leaf", [][]wire.NodeID{{0, 1, 2}}},
	}
	if !o.Quick {
		shapes = append(shapes, clusterShape{
			"9 nodes / 3 super-leaves", [][]wire.NodeID{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		})
	}
	// The open-loop rate is the headline throughput metric: it must sit
	// well above the old single-threaded commit path's comfort zone (the
	// pre-pipeline baseline topped out near 18k/s completed because only
	// 20k/s was offered) while staying comfortably inside what the
	// parallel commit path absorbs loss-free on small CI hosts (a 1-CPU
	// container sustains >150k/s; the gate fails the run on any lost
	// reply, so an overcommitted rate is self-diagnosing).
	warm, dur := 300*time.Millisecond, 1200*time.Millisecond
	closedWorkers, openRate := 64, 60e3
	if !o.Quick {
		warm, dur = 500*time.Millisecond, 3*time.Second
		closedWorkers, openRate = 128, 150e3
	}

	tbl := &metrics.Table{Header: []string{
		"cluster", "mode", "offered", "done", "req/s", "p50", "p99", "allocs/req",
	}}
	liveMetrics := map[string]float64{}

	for si, shape := range shapes {
		// Each shape gets a fresh registry: instrument registration is
		// idempotent per (name, labels), so reusing one registry across
		// shapes would pin the sampled closures to the first shape's
		// nodes. The caller's registry observes the headline shape.
		reg := metrics.NewRegistry()
		if si == 0 && o.Registry != nil {
			reg = o.Registry
		}
		liveCfg := livecluster.Config{
			SuperLeaves: shape.sls,
			Node: core.Config{
				CycleInterval: 2 * time.Millisecond,
				TickInterval:  2 * time.Millisecond,
				MaxBatch:      4096,
			},
			Seed:    o.Seed,
			Metrics: reg,
		}
		if o.DataDir != "" {
			liveCfg.DataDir = filepath.Join(o.DataDir, fmt.Sprintf("shape-%d", si))
		}
		cluster, err := livecluster.Start(liveCfg)
		if err != nil {
			fail("live: start %s: %v", shape.label, err)
		}
		conns := dialAll(cluster)

		// Closed loop: latency under self-limiting load, with end-to-end
		// allocation accounting (client encode + transport + consensus +
		// reply fan-out, all in this process). Warmup runs as a separate
		// unmeasured pass so the Mallocs bracket covers exactly the
		// requests Completed counts — allocs_per_request is CI-gated and
		// must not shift when the warm/measure ratio is tuned.
		workload.RunLive(workload.LiveConfig{
			Concurrency: closedWorkers,
			Duration:    warm,
			WriteRatio:  0.2,
			KeyDist:     o.KeyDist,
			Seed:        o.Seed + 7,
		}, conns)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		closed := workload.RunLive(workload.LiveConfig{
			Concurrency: closedWorkers,
			Duration:    dur - warm,
			WriteRatio:  0.2,
			KeyDist:     o.KeyDist,
			Seed:        o.Seed,
		}, conns)
		runtime.ReadMemStats(&after)
		allocsPerReq := float64(after.Mallocs-before.Mallocs) / float64(closed.Completed+1)
		if closed.Completed != closed.Offered || closed.Failed != 0 {
			fail("live: %s closed loop lost replies: offered %d, completed %d, failed %d",
				shape.label, closed.Offered, closed.Completed, closed.Failed)
		}
		addRow(tbl, shape.label, "closed", closed, allocsPerReq)

		// Open loop: offered-rate throughput, as in the paper's sweeps.
		open := workload.RunLive(workload.LiveConfig{
			OpenRate:   openRate,
			Duration:   dur,
			Warmup:     warm,
			WriteRatio: 0.2,
			KeyDist:    o.KeyDist,
			Seed:       o.Seed + 1,
		}, conns)
		if open.Lost != 0 || open.Failed != 0 {
			fail("live: %s open loop lost replies: offered %d, completed %d, failed %d, lost %d",
				shape.label, open.Offered, open.Completed, open.Failed, open.Lost)
		}
		addRow(tbl, shape.label, "open", open, -1)

		for _, c := range conns {
			c.(ClientDoer).Client.Close()
		}
		if !cluster.Stop(10 * time.Second) {
			fail("live: %s did not shut down cleanly", shape.label)
		}

		if si == 0 {
			liveMetrics["closed_throughput_req_s"] = closed.Throughput()
			liveMetrics["closed_p50_ms"] = msFloat(closed.All().Median())
			liveMetrics["closed_p99_ms"] = msFloat(closed.All().Quantile(0.99))
			liveMetrics["open_throughput_req_s"] = open.Throughput()
			liveMetrics["open_p99_ms"] = msFloat(open.All().Quantile(0.99))
			liveMetrics["allocs_per_request"] = allocsPerReq
			// Stage attribution from the registry (summed over nodes):
			// how much consensus, transport and durability work the run's
			// requests cost. Informational — benchdiff gates only its
			// schedule-anchored keys.
			liveMetrics["stage_cycles_committed"] = sumFamily(reg, "canopus_core_cycles_committed_total")
			liveMetrics["stage_client_requests"] = sumFamily(reg, "canopus_client_requests_total")
			liveMetrics["stage_transport_writes"] = sumFamily(reg, "canopus_transport_writes_total")
			liveMetrics["stage_transport_sent_mb"] = sumFamily(reg, "canopus_transport_sent_bytes_total") / (1 << 20)
			if o.DataDir != "" {
				liveMetrics["stage_wal_fsyncs"] = sumFamily(reg, "canopus_wal_fsyncs_total")
			}
		}
	}

	fmt.Fprint(o.Out, tbl.String())
	fmt.Fprintln(o.Out, "live: all replies accounted for; graceful shutdown clean")

	if o.JSONOut != "" {
		writeLiveJSON(o.JSONOut, liveMetrics)
		fmt.Fprintf(o.Out, "live: wrote %s\n", o.JSONOut)
	}
}

// ClientDoer adapts the public client package to the workload.Doer
// shape, using the low-level callback primitive so the benchmark hot
// path stays goroutine- and allocation-lean (the workload's long-lived
// done callback flows straight through; no adapter closure per op). The
// round-trip benchmark in the root package uses it too.
type ClientDoer struct{ Client *client.Client }

// Do implements workload.Doer.
func (d ClientDoer) Do(op wire.Op, key uint64, val []byte, done func(ok bool)) {
	d.Client.AsyncOk(client.Op{Kind: op, Key: key, Val: val}, done)
}

func dialAll(cluster *livecluster.Cluster) []workload.Doer {
	conns := make([]workload.Doer, cluster.NumNodes())
	for i := range conns {
		cl, err := client.New(client.Config{Endpoints: []string{cluster.ClientAddr(i)}})
		if err != nil {
			fail("live: client for node %d: %v", i, err)
		}
		conns[i] = ClientDoer{Client: cl}
	}
	return conns
}

func addRow(tbl *metrics.Table, label, mode string, res *workload.LiveResult, allocsPerReq float64) {
	all := res.All()
	allocs := "-"
	if allocsPerReq >= 0 {
		allocs = fmt.Sprintf("%.1f", allocsPerReq)
	}
	tbl.Add(label, mode,
		fmt.Sprint(res.Offered), fmt.Sprint(res.Completed),
		metrics.FormatRate(res.Throughput()),
		ms(all.Median()), ms(all.Quantile(0.99)), allocs)
}

func msFloat(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// sumFamily folds one metric family's series (all nodes) into a single
// number.
func sumFamily(reg *metrics.Registry, name string) float64 {
	var total float64
	reg.Each(func(n string, _ []metrics.Label, v float64) {
		if n == name {
			total += v
		}
	})
	return total
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// liveJSON is the BENCH_live.json schema cmd/benchdiff consumes.
type liveJSON struct {
	Comment string             `json:"_comment"`
	GOOS    string             `json:"goos"`
	GOARCH  string             `json:"goarch"`
	Metrics map[string]float64 `json:"metrics"`
}

func writeLiveJSON(path string, m map[string]float64) {
	rounded := make(map[string]float64, len(m))
	for k, v := range m {
		rounded[k] = float64(int64(v*1000+0.5)) / 1000
	}
	doc := liveJSON{
		Comment: "Live-cluster (real loopback TCP) baseline from `canopus-bench -exp live -quick -json BENCH_live.json`. " +
			"Wall-clock numbers vary across hosts: CI's live-smoke job gates only the schedule-anchored metrics " +
			"(allocs_per_request, closed_p50_ms, closed_throughput_req_s, open_throughput_req_s) via cmd/benchdiff; " +
			"the rest are recorded for humans.",
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Metrics: rounded,
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail("live: marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fail("live: write %s: %v", path, err)
	}
}
