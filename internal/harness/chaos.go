package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"canopus/internal/core"
	"canopus/internal/engine"
	"canopus/internal/kvstore"
	"canopus/internal/lincheck"
	"canopus/internal/lot"
	"canopus/internal/metrics"
	"canopus/internal/netsim"
	"canopus/internal/wal"
	"canopus/internal/wire"
)

// Chaos experiments: a Canopus deployment driven by explicit
// (materialized) client requests while a netsim.FaultPlan injects
// crashes, partitions, latency spikes and packet loss. Unlike the fluid
// workload used for throughput figures, every operation here is a real
// keyed read or write whose invocation/response interval is recorded, so
// the committed history of each run is checked for linearizability with
// internal/lincheck. Runs are bit-identically replayable: the same
// ChaosSpec always yields the same commit log, state digest and event
// count.

// ChaosSpec describes one fault-injection experiment.
type ChaosSpec struct {
	// Topology (same conventions as Spec).
	MultiDC  bool
	Groups   int
	PerGroup int
	WANRTT   [][]time.Duration

	// Node carries per-node protocol knobs; Tree and Self are filled per
	// node. Zero TickInterval defaults to 1ms so broadcast-layer failure
	// detection (25×4×Tick) settles within a few hundred milliseconds.
	Node core.Config

	// Faults is the deterministic fault schedule. Crashed nodes with a
	// RestartAt come back with empty state through the join protocol.
	Faults netsim.FaultPlan
	// FaultAt anchors the recovery-time metric (typically the principal
	// crash or partition time). Zero disables the metric.
	FaultAt time.Duration

	// EvictRestartDelay is how long an evicted node (told so by an
	// Evicted notice after its leaf was resolved dead — requires
	// Node.LeafTimeout > 0) waits before restarting as a protocol-level
	// joiner, modeling an operator bouncing the deposed rack. Defaults to
	// 200ms when leaf eviction is enabled; negative disables the
	// automatic restart (evicted nodes stay down).
	EvictRestartDelay time.Duration

	// Closed-loop client load.
	Clients    int           // clients per node (default 2)
	Keys       uint64        // key space size (default 128)
	WriteRatio float64       // default 0.5
	ThinkTime  time.Duration // mean pause between a client's ops (default 25ms)
	OpTimeout  time.Duration // abandon an unacknowledged op after this (default 1s)
	MaxOps     int           // global op budget; 0 = time-bound only

	// StoreShards is each replica's kvstore shard count (default 1).
	// Sharding must be protocol-invisible: runs differing only in shard
	// count produce identical histories, commit digests and event counts,
	// and replicas with equal shard counts at equal commit positions hold
	// equal log digests.
	StoreShards int

	// Durable gives every node a storage engine (internal/wal) over a
	// per-node in-memory disk that survives in-sim restarts: crashed
	// nodes with a RestartAt come back by recovering their snapshot + WAL
	// instead of re-entering through the join protocol. Designed for
	// power-loss plans — every node crashed and restarted — which is the
	// only crash shape the cold-start recovery path claims (a single node
	// restarting into a live cluster must still join: its peers committed
	// its Leave).
	Durable bool
	// SnapshotCycles is the durable snapshot cadence (wal default when
	// 0); small values make restarts recover snapshot + WAL tail rather
	// than pure replay.
	SnapshotCycles int

	Seed     int64
	Duration time.Duration // virtual run length (default 5s)
}

func (s *ChaosSpec) fill() {
	if s.Groups == 0 {
		s.Groups = 2
	}
	if s.PerGroup == 0 {
		s.PerGroup = 3
	}
	if s.Node.TickInterval == 0 {
		s.Node.TickInterval = time.Millisecond
	}
	if s.Clients == 0 {
		s.Clients = 2
	}
	if s.Keys == 0 {
		s.Keys = 128
	}
	if s.WriteRatio == 0 {
		s.WriteRatio = 0.5
	}
	if s.ThinkTime == 0 {
		s.ThinkTime = 25 * time.Millisecond
	}
	if s.OpTimeout == 0 {
		s.OpTimeout = time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration == 0 {
		s.Duration = 5 * time.Second
	}
	if s.StoreShards <= 0 {
		s.StoreShards = 1
	}
	if s.Node.LeafTimeout > 0 && s.EvictRestartDelay == 0 {
		s.EvictRestartDelay = 200 * time.Millisecond
	}
}

// ChaosResult is one chaos run's outcome.
type ChaosResult struct {
	Linearizable bool
	History      []lincheck.Op // completed ops plus open-interval writes

	OpsDone   int // acknowledged operations
	OpsFailed int // rejected or abandoned operations

	Commits      uint64 // cycles committed at the reference node
	CommitDigest uint64 // order-sensitive digest of the reference commit log
	StateDigest  uint64 // reference node's final store contents

	Availability float64       // fraction of 100ms windows with ≥1 commit
	LongestStall time.Duration // longest commit-free span
	Recovery     time.Duration // first commit at/after FaultAt, minus FaultAt
	Recovered    bool

	// Windows is the per-window commit count over [0, Duration) at
	// WindowSize granularity — the availability timeline. Tests assert
	// outage shape against it: commits before the fault, a bounded gap
	// while the dead leaf times out and is evicted, commits after.
	Windows    []int
	WindowSize time.Duration

	// Evictions and Readmissions total the leaf evictions resolved and
	// dead leaves readmitted, summed over replicas alive at the end of
	// the run (LeafTimeout runs only; zero otherwise).
	Evictions    uint64
	Readmissions uint64

	Events uint64 // simulation events (replay-identity indicator)

	// Replicas is each replica's final commit position and digests
	// (after the drain window). Replicas at the same committed cycle
	// must agree on every digest — the replica-equality invariant the
	// sharded store has to preserve.
	Replicas []ReplicaState
}

// ReplicaState is one replica's post-run position and digests.
type ReplicaState struct {
	Node      wire.NodeID
	Committed uint64
	// Restarted reports the replica was replaced at least once during
	// the run — by the fault plan (crash/power-loss restart) or by the
	// eviction-restart path. A restarted replica's apply log starts at
	// its recovery point (snapshot install or disk recovery), so log
	// digests only compare between never-restarted replicas.
	Restarted   bool
	LogLen      uint64
	LogDigest   uint64
	StateDigest uint64
}

// perKeyCap keeps per-key histories comfortably inside lincheck's 62-op
// window (closed-loop clients make same-key ops mostly sequential, so
// the check stays cheap).
const perKeyCap = 55

// chaosClient is one closed-loop client.
type chaosClient struct {
	id   uint64
	node wire.NodeID
	rng  *rand.Rand
	seq  uint64

	pendingSeq    uint64 // 0 = idle
	pendingOp     lincheck.Op
	pendingIsRead bool
}

// chaosRun carries the mutable state of one experiment.
type chaosRun struct {
	spec    ChaosSpec
	sim     *netsim.Sim
	runner  *netsim.Runner
	tree    *lot.Tree
	nodes   []*core.Node
	stores  []*kvstore.Store
	disks   []*wal.MemFS // per-node durable disks (Durable only)
	clients []*chaosClient

	history  []lincheck.Op
	keyCount map[uint64]uint64
	issued   int
	done     int
	failed   int

	ref          wire.NodeID
	restarted    map[wire.NodeID]bool
	avail        metrics.Availability
	commits      uint64
	commitDigest uint64
}

// RunChaos executes one chaos experiment.
func RunChaos(spec ChaosSpec) ChaosResult {
	res, _ := runChaosInner(spec)
	return res
}

// runChaosInner also returns the run's internals for test inspection.
func runChaosInner(spec ChaosSpec) (ChaosResult, *chaosRun) {
	spec.fill()
	r := &chaosRun{spec: spec, keyCount: make(map[uint64]uint64), restarted: make(map[wire.NodeID]bool)}
	r.sim = netsim.NewSim()

	topo := buildTopo(Spec{MultiDC: spec.MultiDC, Groups: spec.Groups, PerGroup: spec.PerGroup, WANRTT: spec.WANRTT})
	r.runner = netsim.NewRunner(r.sim, topo, netsim.DefaultCosts(), spec.Seed)

	sls := make([][]wire.NodeID, spec.Groups)
	for g := 0; g < spec.Groups; g++ {
		sls[g] = topo.RackMembers(g)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		panic(err)
	}
	r.tree = tree

	n := topo.NumNodes()
	r.ref = referenceNode(n, spec.Faults)
	r.nodes = make([]*core.Node, n)
	r.stores = make([]*kvstore.Store, n)
	if spec.Durable {
		r.disks = make([]*wal.MemFS, n)
		for i := range r.disks {
			r.disks[i] = wal.NewMemFS()
		}
	}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		var node *core.Node
		if spec.Durable {
			node = r.newDurableNode(id)
		} else {
			node = core.NewNode(r.nodeConfig(id), r.newStore(id), r.callbacks(id))
		}
		r.nodes[i] = node
		r.runner.Register(id, node)
	}

	r.runner.InstallFaults(spec.Faults, func(id wire.NodeID) engine.Machine {
		r.restarted[id] = true
		if spec.Durable {
			// Power loss: the replacement recovers from its own disk —
			// snapshot restore plus WAL replay — and closes any remaining
			// gap to its peers through root catch-up.
			node := r.newDurableNode(id)
			r.nodes[id] = node
			return node
		}
		// State loss: the replacement machine starts from an empty store
		// and recovers through the §4.6 join protocol's state transfer.
		node := core.NewJoiner(r.nodeConfig(id), r.newStore(id), r.callbacks(id))
		r.nodes[id] = node
		return node
	})

	// Closed-loop clients, spread across nodes.
	for c := 0; c < spec.Clients*n; c++ {
		cl := &chaosClient{
			id:   uint64(c + 1),
			node: wire.NodeID(c % n),
			rng:  rand.New(rand.NewSource(spec.Seed + int64(c)*104729 + 13)),
		}
		r.clients = append(r.clients, cl)
		// Stagger first invocations inside the first think window.
		r.schedule(cl, time.Duration(cl.rng.Int63n(int64(spec.ThinkTime)))+time.Millisecond)
	}

	// Run past Duration so in-flight commits drain and every pending
	// op's watchdog fires: abandon() records unacknowledged writes as
	// open intervals, so by the time RunUntil returns the history is
	// complete.
	r.sim.RunUntil(spec.Duration + 2*spec.OpTimeout)

	res := ChaosResult{
		Linearizable: lincheck.Check(r.history),
		History:      r.history,
		OpsDone:      r.done,
		OpsFailed:    r.failed,
		Commits:      r.commits,
		CommitDigest: r.commitDigest,
		StateDigest:  r.stores[r.ref].StateDigest(),
		Availability: r.avail.Fraction(0, spec.Duration),
		LongestStall: r.avail.LongestGap(0, spec.Duration),
		Windows:      r.avail.WindowCounts(0, spec.Duration),
		WindowSize:   100 * time.Millisecond,
		Events:       r.sim.Steps(),
	}
	for i, node := range r.nodes {
		if !r.runner.Alive(wire.NodeID(i)) {
			continue
		}
		res.Evictions += node.LeafEvictions()
		res.Readmissions += node.LeafReadmissions()
	}
	for i, node := range r.nodes {
		res.Replicas = append(res.Replicas, ReplicaState{
			Node:        wire.NodeID(i),
			Committed:   node.Committed(),
			Restarted:   r.restarted[wire.NodeID(i)],
			LogLen:      r.stores[i].LogLen(),
			LogDigest:   r.stores[i].LogDigest(),
			StateDigest: r.stores[i].StateDigest(),
		})
	}
	if spec.FaultAt > 0 {
		res.Recovery, res.Recovered = r.avail.RecoveryAfter(spec.FaultAt)
	}
	return res, r
}

// referenceNode picks the lowest node the plan never crashes; its commit
// log and store anchor the run's digests and availability. When the plan
// crashes every node (a full-cluster power loss), the anchor is the
// lowest node it restarts — the one that finishes the run alive.
func referenceNode(n int, plan netsim.FaultPlan) wire.NodeID {
	for i := 0; i < n; i++ {
		crashed := false
		for _, c := range plan.Crashes {
			if int(c.Node) == i {
				crashed = true
				break
			}
		}
		if !crashed {
			return wire.NodeID(i)
		}
	}
	for i := 0; i < n; i++ {
		for _, c := range plan.Crashes {
			if int(c.Node) == i && c.RestartAt > 0 {
				return wire.NodeID(i)
			}
		}
	}
	panic("chaos: fault plan crashes every node and restarts none; no reference replica")
}

// newDurableNode builds node id's store and storage engine over its
// persistent in-sim disk, recovering whatever an earlier incarnation made
// durable — used at boot (empty disk: recovery is a no-op) and by the
// restart factory after a power loss. The sim runs the serial commit
// path, so every cycle appends and fsyncs inside its machine turn and the
// durable watermark equals the committed watermark at any crash instant.
func (r *chaosRun) newDurableNode(id wire.NodeID) *core.Node {
	st := r.newStore(id)
	mgr, err := wal.Open(wal.Options{FS: r.disks[id], Store: st, SnapshotCycles: r.spec.SnapshotCycles})
	if err != nil {
		panic(fmt.Sprintf("chaos: node %d durability: %v", id, err))
	}
	cfg := r.nodeConfig(id)
	cfg.Durability = mgr
	node := core.NewNode(cfg, st, r.callbacks(id))
	if _, err := mgr.Recover(node); err != nil {
		panic(fmt.Sprintf("chaos: node %d recovery: %v", id, err))
	}
	return node
}

func (r *chaosRun) nodeConfig(id wire.NodeID) core.Config {
	cfg := r.spec.Node
	cfg.Tree = r.tree
	cfg.Self = id
	return cfg
}

func (r *chaosRun) newStore(id wire.NodeID) *kvstore.Store {
	st := kvstore.NewShardedLogged(r.spec.StoreShards)
	r.stores[id] = st
	return st
}

func (r *chaosRun) callbacks(id wire.NodeID) core.Callbacks {
	cbs := core.Callbacks{
		OnReply: func(req *wire.Request, val []byte) { r.onReply(req, val) },
	}
	if r.spec.Node.LeafTimeout > 0 && r.spec.EvictRestartDelay > 0 {
		cbs.OnEvicted = func() { r.onEvicted(id) }
	}
	if id == r.ref {
		cbs.OnCommit = func(cycle uint64, order []*wire.Batch) {
			r.commits = cycle
			r.avail.Record(r.sim.Now())
			r.commitDigest = digestCommit(r.commitDigest, cycle, order)
		}
	}
	return cbs
}

// onEvicted handles an Evicted notice at node id: the rest of the
// cluster resolved its super-leaf dead and committed its Leave, so the
// node can never make progress in this incarnation. After
// EvictRestartDelay the harness bounces it into a fresh joiner —
// deliberately including Durable runs: the committed Leave invalidates
// the single-node cold-start recovery path, so an evicted node restarts
// without its disk and re-enters through the §4.6 join protocol.
func (r *chaosRun) onEvicted(id wire.NodeID) {
	old := r.nodes[id]
	r.sim.After(r.spec.EvictRestartDelay, func() {
		if !r.runner.Alive(id) || r.nodes[id] != old {
			return // crashed meanwhile, or a newer incarnation took over
		}
		r.runner.Crash(id)
		r.restarted[id] = true
		node := core.NewJoiner(r.nodeConfig(id), r.newStore(id), r.callbacks(id))
		r.nodes[id] = node
		r.runner.Restart(id, node)
	})
}

// digestCommit folds one committed cycle into an order-sensitive digest.
func digestCommit(prev uint64, cycle uint64, order []*wire.Batch) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(prev)
	put(cycle)
	for _, b := range order {
		put(uint64(uint32(b.Origin)))
		put(uint64(b.NumRead)<<32 | uint64(b.NumWrite))
		for i := range b.Reqs {
			req := &b.Reqs[i]
			put(req.Client)
			put(req.Seq)
			put(req.Key)
			h.Write(req.Val)
		}
	}
	return h.Sum64()
}

// schedule queues cl's next operation at now+delay.
func (r *chaosRun) schedule(cl *chaosClient, delay time.Duration) {
	r.sim.After(delay, func() { r.invoke(cl) })
}

// invoke issues cl's next operation, or re-probes later if the client's
// node is currently unusable or the run is winding down.
func (r *chaosRun) invoke(cl *chaosClient) {
	now := r.sim.Now()
	if now > r.spec.Duration {
		return
	}
	if r.spec.MaxOps > 0 && r.issued >= r.spec.MaxOps {
		return
	}
	node := r.nodes[cl.node]
	if !r.runner.Alive(cl.node) || node.Stalled() {
		// The client's node is down (or deposed): nothing was issued, so
		// nothing counts as failed. Probe again later so load resumes
		// the moment the node rejoins.
		r.schedule(cl, r.spec.OpTimeout)
		return
	}

	key, ok := r.pickKey(cl)
	if !ok {
		// Every key is at lincheck's per-key budget: the run has issued
		// all the checkable load it can. Park this client for good
		// rather than overflow a history past the checker's hard limit.
		return
	}
	cl.seq++
	r.issued++
	isRead := cl.rng.Float64() >= r.spec.WriteRatio
	op := lincheck.Op{Key: key, Invoke: int64(now)}
	req := wire.Request{Client: cl.id, Seq: cl.seq, Key: key}
	if isRead {
		op.Kind = lincheck.OpRead
		req.Op = wire.OpRead
	} else {
		op.Kind = lincheck.OpWrite
		op.Value = cl.id<<20 | cl.seq
		req.Op = wire.OpWrite
		req.Val = binary.LittleEndian.AppendUint64(nil, op.Value)
	}
	cl.pendingSeq, cl.pendingOp, cl.pendingIsRead = cl.seq, op, isRead
	r.keyCount[key]++
	node.Submit(req)

	// Watchdog: abandon the op if no reply arrives in time. A Submit to
	// a node that crashes or stalls before commit is silently dropped
	// (the paper's stall semantics), so clients must time out.
	seq := cl.seq
	r.sim.After(r.spec.OpTimeout, func() {
		if cl.pendingSeq != seq {
			return // acknowledged in time
		}
		r.abandon(cl)
	})
}

// abandon closes out an unacknowledged op: abandoned writes stay in the
// history with an open interval (they may still commit later); abandoned
// reads constrain nothing and are dropped.
func (r *chaosRun) abandon(cl *chaosClient) {
	if !cl.pendingIsRead {
		op := cl.pendingOp
		op.Return = math.MaxInt64
		r.history = append(r.history, op)
	}
	cl.pendingSeq = 0
	r.failed++
	r.schedule(cl, r.think(cl))
}

// onReply completes the matching client's pending op.
func (r *chaosRun) onReply(req *wire.Request, val []byte) {
	idx := int(req.Client) - 1
	if idx < 0 || idx >= len(r.clients) {
		return
	}
	cl := r.clients[idx]
	if cl.pendingSeq != req.Seq {
		return // late reply for an op the watchdog already closed out
	}
	op := cl.pendingOp
	op.Return = int64(r.sim.Now())
	if op.Kind == lincheck.OpRead {
		if len(val) >= 8 {
			op.Value = binary.LittleEndian.Uint64(val)
		}
	}
	r.history = append(r.history, op)
	cl.pendingSeq = 0
	r.done++
	r.schedule(cl, r.think(cl))
}

func (r *chaosRun) think(cl *chaosClient) time.Duration {
	return time.Duration(cl.rng.Int63n(int64(2*r.spec.ThinkTime))) + time.Millisecond
}

// pickKey draws a key, steering away from keys whose history is near
// lincheck's per-key search limit. ok is false once every key is
// saturated — lincheck.CheckKey panics beyond 62 ops on one key, so the
// driver must stop issuing rather than overflow (long Durations against
// a small Keys space hit this; size Keys ≥ expected-ops/55 to avoid
// starving the tail of a run).
func (r *chaosRun) pickKey(cl *chaosClient) (uint64, bool) {
	key := uint64(cl.rng.Int63n(int64(r.spec.Keys)))
	for i := uint64(0); i < r.spec.Keys; i++ {
		k := (key + i) % r.spec.Keys
		if r.keyCount[k] < perKeyCap {
			return k, true
		}
	}
	return 0, false
}

// String renders a compact result line for logs and reports.
func (r ChaosResult) String() string {
	lin := "LINEARIZABLE"
	if !r.Linearizable {
		lin = "VIOLATION"
	}
	rec := "n/a"
	if r.Recovered {
		rec = r.Recovery.Round(time.Millisecond).String()
	}
	s := fmt.Sprintf("%s ops=%d failed=%d commits=%d avail=%.0f%% stall=%v recovery=%s",
		lin, r.OpsDone, r.OpsFailed, r.Commits, 100*r.Availability,
		r.LongestStall.Round(time.Millisecond), rec)
	if r.Evictions > 0 || r.Readmissions > 0 {
		s += fmt.Sprintf(" evictions=%d readmissions=%d", r.Evictions, r.Readmissions)
	}
	return s
}
