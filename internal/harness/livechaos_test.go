package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestLiveChaosCampaigns runs each live campaign once in quick mode —
// real sockets, real clocks, the chaosnet fabric in the loop — and
// requires the outcome summary every campaign contracts to produce.
// The scenario funcs return errors instead of failing the process, so
// the catalog is testable without forking canopus-bench.
func TestLiveChaosCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live chaos campaigns")
	}
	o := NewOptions(WithQuick(true), WithOutput(&bytes.Buffer{}))
	for _, tc := range []struct {
		name string
		run  func(o *Options) (string, error)
		want string
	}{
		{"leaf-partition-evict-readmit", liveLeafEvictReadmit, "evicted in"},
		{"geo-wan-evict-readmit", liveGeoWANEvictReadmit, "evicted in"},
		{"asymmetric-partition-stall", liveAsymmetricStall, "stall detected in"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			line, err := tc.run(o)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(line, tc.want) {
				t.Fatalf("outcome %q, want it to mention %q", line, tc.want)
			}
			t.Log(line)
		})
	}
}
