// Package events is the node-local watch engine behind the event plane:
// it turns the committed apply stream (core.Callbacks.OnEvents) into
// per-watcher change feeds that are in commit-cycle order, exactly-once
// and gap-free.
//
// One Hub serves one node. Publish consumes each committed cycle's
// change events; Watch registers a consumer for a key, a key prefix or
// the whole keyspace. The hub keeps a bounded history of recent cycles
// so a watcher can resume from a cycle number after a reconnect or
// failover: registration replays the retained events from the resume
// point and atomically joins the live set, so the feed has no seam. A
// resume point that has already been evicted fails with
// ErrWatchOverflow — the consumer must re-read current state instead of
// trusting the feed.
//
// Delivery is synchronous and order-preserving: sinks run under the
// hub mutex, on whatever goroutine called Publish (the node's apply
// executor in parallel mode). A sink must therefore never block — it
// hands the events to a buffer or bounded queue and reports whether it
// still has room. A sink that reports no room is overflowed: the hub
// drops the watch and tells the sink, once, terminally. Slow consumers
// lose their watch, never their ordering.
package events

import (
	"errors"
	"sync"
	"sync/atomic"

	"canopus/internal/metrics"
	"canopus/internal/wire"
)

// ErrWatchOverflow reports a watch that cannot be (or stay) gap-free:
// the requested resume cycle was already evicted from the hub's
// history, or the consumer fell too far behind and was dropped. The
// consumer's only correct recovery is to re-read current state and
// start a fresh watch.
var ErrWatchOverflow = errors.New("events: watch overflowed")

// Default history bounds: how much committed change history a hub
// retains for resume, whichever limit is hit first.
const (
	DefaultHistoryCycles = 1024
	DefaultHistoryBytes  = 4 << 20
)

// Notification is one delivery to a watch sink: the matched events of
// one committed cycle, or the terminal overflow notice (no events).
type Notification struct {
	Cycle    uint64
	Events   []wire.Event // hub-owned for replay, caller-owned for live; copy to retain
	Overflow bool         // terminal: the watch is dead, no further calls
}

// Sink consumes one watch's notifications. It runs under the hub mutex
// and must not block; the return value reports whether the consumer
// still has room. Returning false overflows the watch: the hub removes
// it and makes one final call with Overflow set (whose return value is
// ignored). After an overflow call the sink is never invoked again.
type Sink func(n Notification) bool

// Spec selects the keys a watch observes.
type Spec struct {
	Key uint64
	// PrefixBits widens the selection: 64 matches exactly Key, 0
	// matches every key, n in between matches keys sharing Key's top n
	// bits.
	PrefixBits uint8
	// SinceCycle, when non-zero, replays retained history from that
	// cycle (inclusive) before going live. Zero starts live-only.
	SinceCycle uint64
}

func (s *Spec) matches(key uint64) bool {
	switch {
	case s.PrefixBits == 0:
		return true
	case s.PrefixBits >= 64:
		return key == s.Key
	default:
		shift := 64 - uint(s.PrefixBits)
		return key>>shift == s.Key>>shift
	}
}

type watcher struct {
	id   uint64
	spec Spec
	sink Sink
}

// cycleRecord is one retained non-empty cycle.
type cycleRecord struct {
	cycle uint64
	evs   []wire.Event
	bytes int
}

// Hub fans one node's committed change stream out to watchers. All
// methods are safe for concurrent use.
type Hub struct {
	mu       sync.Mutex
	nextID   uint64
	watchers map[uint64]*watcher

	// hist holds recent non-empty cycles, oldest first, bounded by
	// maxCycles/maxBytes. Empty cycles advance lastCycle but store
	// nothing: an absent cycle above evictedThrough is known empty.
	hist      []cycleRecord
	histBytes int
	maxCycles int
	maxBytes  int

	// evictedThrough is the highest cycle whose events may be lost:
	// resume is gap-free iff SinceCycle > evictedThrough. It starts at
	// the floor (the node's committed watermark when the hub attached —
	// everything at or before it predates the hub's view).
	evictedThrough uint64
	lastCycle      uint64

	active    atomic.Int64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	overflows atomic.Uint64
}

// Options bounds a hub's history.
type Options struct {
	HistoryCycles int    // retained non-empty cycles (default DefaultHistoryCycles)
	HistoryBytes  int    // retained event bytes (default DefaultHistoryBytes)
	Floor         uint64 // committed watermark at attach; cycles <= Floor are pre-history
}

// NewHub builds a hub with the given bounds.
func NewHub(o Options) *Hub {
	if o.HistoryCycles <= 0 {
		o.HistoryCycles = DefaultHistoryCycles
	}
	if o.HistoryBytes <= 0 {
		o.HistoryBytes = DefaultHistoryBytes
	}
	return &Hub{
		watchers:       make(map[uint64]*watcher),
		maxCycles:      o.HistoryCycles,
		maxBytes:       o.HistoryBytes,
		evictedThrough: o.Floor,
		lastCycle:      o.Floor,
	}
}

// Publish consumes one committed cycle's events, in commit order —
// wire it to core.Callbacks.OnEvents (or Node.SetOnEvents). Empty
// cycles must be published too: they advance the resume watermark.
// The events (and their values) need only be valid for the call; the
// hub copies what it retains. Live sinks run inside this call.
func (h *Hub) Publish(cycle uint64, evs []wire.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cycle <= h.lastCycle {
		return // replayed duplicate (e.g. recovery overlap); already seen
	}
	if cycle > h.lastCycle+1 {
		// Cycles committed outside this hub's view (snapshot install on a
		// joiner, crash-recovery replay): their events are unobtainable,
		// so a resume below here must fail instead of silently skipping.
		h.evictedThrough = cycle - 1
	}
	h.lastCycle = cycle
	if len(evs) == 0 {
		return
	}
	h.retain(cycle, evs)

	// Deliver to every live watcher whose spec matches anything in the
	// cycle. Overflowed watchers are collected first: removing while
	// ranging the map is fine, but the terminal notice goes out after
	// the loop for clarity.
	var dead []*watcher
	var matched []wire.Event
	for _, w := range h.watchers {
		matched = matched[:0]
		for i := range evs {
			if w.spec.matches(evs[i].Key) {
				matched = append(matched, evs[i])
			}
		}
		if len(matched) == 0 {
			continue
		}
		if w.sink(Notification{Cycle: cycle, Events: matched}) {
			h.delivered.Add(uint64(len(matched)))
			continue
		}
		h.dropped.Add(uint64(len(matched)))
		dead = append(dead, w)
	}
	for _, w := range dead {
		h.killLocked(w)
	}
}

// retain copies one cycle's events into the history ring and evicts
// from the front until the bounds hold.
func (h *Hub) retain(cycle uint64, evs []wire.Event) {
	rec := cycleRecord{cycle: cycle, evs: make([]wire.Event, len(evs))}
	for i := range evs {
		e := evs[i]
		if e.Val != nil {
			e.Val = append([]byte(nil), e.Val...)
		}
		rec.evs[i] = e
		rec.bytes += 17 + len(e.Val)
	}
	h.hist = append(h.hist, rec)
	h.histBytes += rec.bytes
	for len(h.hist) > h.maxCycles || (h.histBytes > h.maxBytes && len(h.hist) > 1) {
		front := h.hist[0]
		h.hist = h.hist[1:]
		h.histBytes -= front.bytes
		h.evictedThrough = front.cycle
	}
}

// Watch registers a consumer and returns its hub-assigned watch ID.
// With a non-zero SinceCycle the retained events from that cycle on
// are replayed through the sink before the watch joins the live set —
// both under the hub mutex, so the replay-to-live seam cannot drop or
// duplicate a cycle. Watch fails with ErrWatchOverflow when the resume
// point has been evicted (the feed could not be gap-free), and the
// sink is never called.
func (h *Hub) Watch(spec Spec, sink Sink) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if spec.SinceCycle != 0 {
		if spec.SinceCycle <= h.evictedThrough {
			return 0, ErrWatchOverflow
		}
		var matched []wire.Event
		for i := range h.hist {
			rec := &h.hist[i]
			if rec.cycle < spec.SinceCycle {
				continue
			}
			matched = matched[:0]
			for j := range rec.evs {
				if spec.matches(rec.evs[j].Key) {
					matched = append(matched, rec.evs[j])
				}
			}
			if len(matched) == 0 {
				continue
			}
			if !sink(Notification{Cycle: rec.cycle, Events: matched}) {
				// Could not even absorb the replay: dead on arrival. The
				// terminal notice still goes out so one code path handles
				// every overflow.
				h.dropped.Add(uint64(len(matched)))
				h.overflows.Add(1)
				sink(Notification{Overflow: true})
				return 0, ErrWatchOverflow
			}
			h.delivered.Add(uint64(len(matched)))
		}
	}
	h.nextID++
	w := &watcher{id: h.nextID, spec: spec, sink: sink}
	h.watchers[w.id] = w
	h.active.Add(1)
	return w.id, nil
}

// Cancel removes a watch. Idempotent; the sink is not notified (the
// consumer asked). Reports whether the watch was live.
func (h *Hub) Cancel(id uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.watchers[id]; !ok {
		return false
	}
	delete(h.watchers, id)
	h.active.Add(-1)
	return true
}

// killLocked overflows one watcher: remove, count, terminal notice.
func (h *Hub) killLocked(w *watcher) {
	if _, ok := h.watchers[w.id]; !ok {
		return
	}
	delete(h.watchers, w.id)
	h.active.Add(-1)
	h.overflows.Add(1)
	w.sink(Notification{Overflow: true})
}

// Active reports the number of live watchers.
func (h *Hub) Active() int { return int(h.active.Load()) }

// LastCycle reports the highest published cycle (the resume watermark
// a fresh watcher would continue from).
func (h *Hub) LastCycle() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastCycle
}

// RegisterMetrics exports the hub's instruments into reg under the
// canopus_events_* names with the given constant labels. Safe on a nil
// registry.
func (h *Hub) RegisterMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.GaugeFunc("canopus_events_watchers_active",
		"Live watches registered on this node's event hub.",
		func() float64 { return float64(h.active.Load()) }, labels...)
	reg.CounterFunc("canopus_events_delivered_total",
		"Change events delivered to watch sinks (replay included).",
		h.delivered.Load, labels...)
	reg.CounterFunc("canopus_events_dropped_total",
		"Change events dropped because their watch overflowed.",
		h.dropped.Load, labels...)
	reg.CounterFunc("canopus_events_watch_overflows_total",
		"Watches killed for falling behind or resuming past history.",
		h.overflows.Load, labels...)
	reg.GaugeFunc("canopus_events_history_bytes",
		"Event bytes retained for watch resume.",
		func() float64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return float64(h.histBytes)
		}, labels...)
}
