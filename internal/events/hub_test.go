package events

import (
	"errors"
	"fmt"
	"testing"

	"canopus/internal/wire"
)

// collect is a test sink backed by an unbounded slice with an optional
// capacity that forces overflow.
type collect struct {
	notes []Notification
	limit int // max notifications absorbed; 0 = unlimited
	dead  bool
}

func (c *collect) sink(n Notification) bool {
	if n.Overflow {
		c.dead = true
		return false
	}
	if c.limit > 0 && len(c.notes) >= c.limit {
		return false
	}
	cp := Notification{Cycle: n.Cycle, Events: make([]wire.Event, len(n.Events))}
	for i, e := range n.Events {
		cp.Events[i] = wire.Event{Op: e.Op, Key: e.Key, Val: append([]byte(nil), e.Val...)}
	}
	c.notes = append(c.notes, cp)
	return true
}

func ev(op wire.Op, key uint64, val string) wire.Event {
	var v []byte
	if val != "" {
		v = []byte(val)
	}
	return wire.Event{Op: op, Key: key, Val: v}
}

func TestWatchExactKeyAndPrefix(t *testing.T) {
	h := NewHub(Options{})
	exact, all, pre := &collect{}, &collect{}, &collect{}
	if _, err := h.Watch(Spec{Key: 0xAB00, PrefixBits: 64}, exact.sink); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Watch(Spec{PrefixBits: 0}, all.sink); err != nil {
		t.Fatal(err)
	}
	// Top 48 bits of 0xAB00: matches 0xAB00..0xABFF... no — top 48 bits
	// of a 64-bit key; keys sharing bits 63..16.
	if _, err := h.Watch(Spec{Key: 0xAB0000, PrefixBits: 40}, pre.sink); err != nil {
		t.Fatal(err)
	}

	h.Publish(1, []wire.Event{ev(wire.OpWrite, 0xAB00, "a"), ev(wire.OpWrite, 0xAB0011, "b")})
	h.Publish(2, nil)
	h.Publish(3, []wire.Event{ev(wire.OpDelete, 0xAB00, ""), ev(wire.OpWrite, 0xFF, "c")})

	if len(exact.notes) != 2 || exact.notes[0].Cycle != 1 || exact.notes[1].Cycle != 3 {
		t.Fatalf("exact watch notes = %+v", exact.notes)
	}
	if exact.notes[0].Events[0].Key != 0xAB00 || string(exact.notes[0].Events[0].Val) != "a" {
		t.Fatalf("exact watch event = %+v", exact.notes[0].Events[0])
	}
	if len(all.notes) != 2 || len(all.notes[0].Events) != 2 || len(all.notes[1].Events) != 2 {
		t.Fatalf("all watch notes = %+v", all.notes)
	}
	// Prefix 40 bits: 0xAB0000>>24 == 0; keys below 1<<24 match.
	if len(pre.notes) != 3-1 {
		t.Fatalf("prefix watch notes = %+v", pre.notes)
	}
	if h.Active() != 3 {
		t.Fatalf("active = %d, want 3", h.Active())
	}
}

func TestWatchResumeReplaysHistory(t *testing.T) {
	h := NewHub(Options{})
	h.Publish(1, []wire.Event{ev(wire.OpWrite, 1, "one")})
	h.Publish(2, []wire.Event{ev(wire.OpWrite, 2, "two")})
	h.Publish(3, nil)
	h.Publish(4, []wire.Event{ev(wire.OpWrite, 1, "one-again")})

	c := &collect{}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 2}, c.sink); err != nil {
		t.Fatal(err)
	}
	h.Publish(5, []wire.Event{ev(wire.OpDelete, 2, "")})

	wantCycles := []uint64{2, 4, 5}
	if len(c.notes) != len(wantCycles) {
		t.Fatalf("notes = %+v, want cycles %v", c.notes, wantCycles)
	}
	for i, w := range wantCycles {
		if c.notes[i].Cycle != w {
			t.Fatalf("note %d cycle = %d, want %d", i, c.notes[i].Cycle, w)
		}
	}
	if string(c.notes[0].Events[0].Val) != "two" || string(c.notes[1].Events[0].Val) != "one-again" {
		t.Fatalf("replayed values wrong: %+v", c.notes)
	}
}

func TestWatchResumePastEvictionFails(t *testing.T) {
	h := NewHub(Options{HistoryCycles: 2})
	for cyc := uint64(1); cyc <= 5; cyc++ {
		h.Publish(cyc, []wire.Event{ev(wire.OpWrite, cyc, "x")})
	}
	// Cycles 1..3 evicted; resume from 3 must fail, from 4 succeed.
	c := &collect{}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 3}, c.sink); !errors.Is(err, ErrWatchOverflow) {
		t.Fatalf("resume from evicted cycle: err = %v, want ErrWatchOverflow", err)
	}
	if len(c.notes) != 0 {
		t.Fatalf("failed resume must not deliver: %+v", c.notes)
	}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 4}, c.sink); err != nil {
		t.Fatalf("resume from retained cycle: %v", err)
	}
	if len(c.notes) != 2 || c.notes[0].Cycle != 4 || c.notes[1].Cycle != 5 {
		t.Fatalf("replay = %+v", c.notes)
	}
}

func TestHistoryByteBound(t *testing.T) {
	h := NewHub(Options{HistoryBytes: 300})
	big := make([]byte, 200)
	h.Publish(1, []wire.Event{{Op: wire.OpWrite, Key: 1, Val: big}})
	h.Publish(2, []wire.Event{{Op: wire.OpWrite, Key: 2, Val: big}})
	// Cycle 1 must have been evicted to fit cycle 2.
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 1}, (&collect{}).sink); !errors.Is(err, ErrWatchOverflow) {
		t.Fatalf("err = %v, want ErrWatchOverflow", err)
	}
	c := &collect{}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 2}, c.sink); err != nil || len(c.notes) != 1 {
		t.Fatalf("resume from retained: err=%v notes=%+v", err, c.notes)
	}
}

func TestSlowWatcherOverflows(t *testing.T) {
	h := NewHub(Options{})
	c := &collect{limit: 2}
	if _, err := h.Watch(Spec{PrefixBits: 0}, c.sink); err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(1); cyc <= 5; cyc++ {
		h.Publish(cyc, []wire.Event{ev(wire.OpWrite, cyc, "x")})
	}
	if !c.dead {
		t.Fatal("saturated watcher was not overflowed")
	}
	if len(c.notes) != 2 {
		t.Fatalf("absorbed %d notifications, want 2", len(c.notes))
	}
	if h.Active() != 0 {
		t.Fatalf("active = %d after overflow, want 0", h.Active())
	}
	// The dead sink must never fire again.
	before := len(c.notes)
	h.Publish(6, []wire.Event{ev(wire.OpWrite, 6, "x")})
	if len(c.notes) != before {
		t.Fatal("overflowed watch still delivered")
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	h := NewHub(Options{})
	c := &collect{}
	id, err := h.Watch(Spec{PrefixBits: 0}, c.sink)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(1, []wire.Event{ev(wire.OpWrite, 1, "x")})
	if !h.Cancel(id) {
		t.Fatal("cancel of live watch reported not-live")
	}
	if h.Cancel(id) {
		t.Fatal("double cancel reported live")
	}
	h.Publish(2, []wire.Event{ev(wire.OpWrite, 2, "x")})
	if len(c.notes) != 1 {
		t.Fatalf("delivered after cancel: %+v", c.notes)
	}
	if c.dead {
		t.Fatal("cancel must not send an overflow notice")
	}
}

func TestFloorGatesPreHistoryResume(t *testing.T) {
	h := NewHub(Options{Floor: 100})
	h.Publish(101, []wire.Event{ev(wire.OpWrite, 1, "x")})
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 90}, (&collect{}).sink); !errors.Is(err, ErrWatchOverflow) {
		t.Fatalf("pre-floor resume: err = %v, want ErrWatchOverflow", err)
	}
	c := &collect{}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 101}, c.sink); err != nil || len(c.notes) != 1 {
		t.Fatalf("post-floor resume: err=%v notes=%+v", err, c.notes)
	}
	// Stale republish (e.g. recovery overlap) must be ignored.
	h.Publish(101, []wire.Event{ev(wire.OpWrite, 9, "dup")})
	if len(c.notes) != 1 {
		t.Fatal("duplicate cycle redelivered")
	}
	if got := h.LastCycle(); got != 101 {
		t.Fatalf("LastCycle = %d, want 101", got)
	}
}

func TestPublishGapEvictsResume(t *testing.T) {
	h := NewHub(Options{})
	h.Publish(1, []wire.Event{ev(wire.OpWrite, 1, "a")})
	// Cycles 2..9 were committed outside the hub's view (snapshot
	// install / recovery replay): a gap. Resumes at or below the gap
	// must fail; resume above it succeeds.
	h.Publish(10, []wire.Event{ev(wire.OpWrite, 1, "b")})
	for _, since := range []uint64{1, 5, 9} {
		if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: since}, (&collect{}).sink); !errors.Is(err, ErrWatchOverflow) {
			t.Fatalf("resume from %d across gap: err = %v, want ErrWatchOverflow", since, err)
		}
	}
	c := &collect{}
	if _, err := h.Watch(Spec{PrefixBits: 0, SinceCycle: 10}, c.sink); err != nil {
		t.Fatal(err)
	}
	if len(c.notes) != 1 || c.notes[0].Cycle != 10 {
		t.Fatalf("replay = %+v", c.notes)
	}
}

func TestPrefixBitsBoundary(t *testing.T) {
	h := NewHub(Options{})
	for _, bits := range []uint8{1, 63, 64} {
		c := &collect{}
		if _, err := h.Watch(Spec{Key: 1 << 63, PrefixBits: bits}, c.sink); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
	// bits=1 matches any key with the top bit set; bits=63 and 64 only
	// the exact key here.
	h.Publish(1, []wire.Event{ev(wire.OpWrite, 1<<63|5, "hi"), ev(wire.OpWrite, 5, "lo")})
	h.Publish(2, []wire.Event{ev(wire.OpWrite, 1<<63, "exact")})
	total := h.Active()
	if total != 3 {
		t.Fatalf("active = %d", total)
	}
}

func TestManyWatchersFanout(t *testing.T) {
	h := NewHub(Options{})
	sinks := make([]*collect, 100)
	for i := range sinks {
		sinks[i] = &collect{}
		if _, err := h.Watch(Spec{Key: uint64(i), PrefixBits: 64}, sinks[i].sink); err != nil {
			t.Fatal(err)
		}
	}
	var evs []wire.Event
	for i := 0; i < 100; i += 2 {
		evs = append(evs, ev(wire.OpWrite, uint64(i), fmt.Sprintf("v%d", i)))
	}
	h.Publish(1, evs)
	for i, c := range sinks {
		want := 0
		if i%2 == 0 {
			want = 1
		}
		if len(c.notes) != want {
			t.Fatalf("watcher %d got %d notifications, want %d", i, len(c.notes), want)
		}
	}
}
