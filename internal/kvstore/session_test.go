package kvstore

import (
	"testing"

	"canopus/internal/wire"
)

const sid = 7 | wire.SessionIDBit

func TestSessionDedupBasics(t *testing.T) {
	tab := NewSessionTable()
	if _, v := tab.Begin(sid, 1, 5); v != SessionUnknown {
		t.Fatalf("unregistered session classified %v, want SessionUnknown", v)
	}
	tab.Register(sid, 3)
	if !tab.Has(sid) || tab.Len() != 1 {
		t.Fatal("registration not recorded")
	}
	if _, v := tab.Begin(sid, 1, 5); v != SessionApply {
		t.Fatalf("first sight classified %v, want SessionApply", v)
	}
	tab.Record(sid, 1, []byte("r1"))
	if cached, v := tab.Begin(sid, 1, 6); v != SessionDuplicate || cached != nil {
		// seq 1 was contiguous with the floor, so its reply compacted
		// away; the duplicate still must not re-apply.
		t.Fatalf("retry classified %v (cached %q), want SessionDuplicate with compacted reply", v, cached)
	}
	// Out-of-order apply above a gap: seq 3 before seq 2.
	if _, v := tab.Begin(sid, 3, 7); v != SessionApply {
		t.Fatalf("gapped seq classified %v, want SessionApply", v)
	}
	tab.Record(sid, 3, []byte("r3"))
	if cached, v := tab.Begin(sid, 3, 8); v != SessionDuplicate || string(cached) != "r3" {
		t.Fatalf("gapped retry = %v/%q, want duplicate with cached r3", v, cached)
	}
	if _, v := tab.Begin(sid, 2, 9); v != SessionApply {
		t.Fatalf("gap filler classified %v, want SessionApply", v)
	}
	tab.Record(sid, 2, nil)
	// Floor advanced over 2 and 3; both still classify duplicate.
	for _, seq := range []uint64{1, 2, 3} {
		if _, v := tab.Begin(sid, seq, 10); v != SessionDuplicate {
			t.Fatalf("seq %d after compaction classified %v, want SessionDuplicate", seq, v)
		}
	}
	tab.Expire(sid)
	if _, v := tab.Begin(sid, 4, 11); v != SessionUnknown {
		t.Fatalf("expired session classified %v, want SessionUnknown", v)
	}
}

func TestSessionWindowForcesFloor(t *testing.T) {
	tab := NewSessionTable()
	tab.Register(sid, 1)
	// Leave seq 1 as a permanent gap, then push far past the window.
	for seq := uint64(2); seq < 2+2*SessionWindow; seq++ {
		if _, v := tab.Begin(sid, seq, seq); v != SessionApply {
			t.Fatalf("seq %d classified %v", seq, v)
		}
		tab.Record(sid, seq, nil)
	}
	e := tab.sessions[sid]
	if len(e.applied) > SessionWindow {
		t.Fatalf("window overflow: %d uncompacted entries", len(e.applied))
	}
	// The abandoned seq 1 is now below the forced floor: treated as
	// duplicate (the documented window semantics).
	if _, v := tab.Begin(sid, 1, 9999); v != SessionDuplicate {
		t.Fatalf("below-window seq classified %v, want SessionDuplicate", v)
	}
}

func TestSessionSnapshotRestore(t *testing.T) {
	tab := NewSessionTable()
	tab.Register(sid, 2)
	tab.Register(sid+1, 4)
	tab.Begin(sid, 1, 5)
	tab.Record(sid, 1, nil)
	tab.Begin(sid, 5, 6) // gap at 2..4
	tab.Record(sid, 5, []byte("v5"))

	snap := tab.Snapshot()
	restored := NewSessionTable()
	restored.Restore(snap)

	for _, id := range []uint64{sid, sid + 1} {
		if !restored.Has(id) {
			t.Fatalf("session %d lost in transfer", id)
		}
	}
	if _, v := restored.Begin(sid, 1, 7); v != SessionDuplicate {
		t.Fatal("compacted seq not duplicate after restore")
	}
	if cached, v := restored.Begin(sid, 5, 7); v != SessionDuplicate || string(cached) != "v5" {
		t.Fatalf("cached reply lost in transfer: %v/%q", v, cached)
	}
	if _, v := restored.Begin(sid, 2, 7); v != SessionApply {
		t.Fatal("gap seq not applicable after restore")
	}
	// Idle scan agrees with the transferred activity clocks (sid was
	// touched at cycle 6 by the transfer-source Begin, sid+1 at 4).
	if ids := restored.IdleBefore(5); len(ids) != 1 || ids[0] != sid+1 {
		t.Fatalf("IdleBefore(5) = %v, want [%d]", ids, sid+1)
	}
	if ids := restored.IdleBefore(7); len(ids) != 2 {
		t.Fatalf("IdleBefore(7) = %v, want both sessions", ids)
	}
}
