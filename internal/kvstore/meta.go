package kvstore

import (
	"sort"

	"canopus/internal/wire"
)

// Key metadata for the event plane: every live key remembers the commit
// cycle that last wrote it (backing GuardCycleLE transactions) and an
// optional owning session (ephemeral keys, deleted automatically when
// the owner expires). Metadata is replicated state — every replica
// derives it from the same committed order — but it is deliberately
// kept out of LogDigest/StateDigest so digests stay comparable with
// pre-event-plane stores. A deleted key's metadata is dropped entirely:
// re-creating the key starts from modification cycle 0, which every
// CycleLE guard passes.

// keyMeta is one key's event-plane metadata.
type keyMeta struct {
	cycle uint64
	owner uint64
}

// ApplyWriteAt is ApplyWrite plus metadata stamping: the write is
// recorded as of commit cycle, and a non-zero owner binds the key to
// that session (ephemeral). A plain write (owner 0) clears any existing
// binding. Concurrency contract is the same as ApplyWrite.
func (s *Store) ApplyWriteAt(req *wire.Request, cycle, owner uint64) {
	sh := &s.shards[s.ShardOf(req.Key)]
	if req.Op == wire.OpDelete {
		sh.dropMeta(req.Key)
	} else if cycle == 0 && owner == 0 {
		sh.dropMeta(req.Key)
	} else {
		old, had := sh.meta[req.Key]
		if had && old.owner != 0 && old.owner != owner {
			sh.detachOwner(old.owner, req.Key)
		}
		if sh.meta == nil {
			sh.meta = make(map[uint64]keyMeta)
		}
		sh.meta[req.Key] = keyMeta{cycle: cycle, owner: owner}
		if owner != 0 && (!had || old.owner != owner) {
			sh.attachOwner(owner, req.Key)
		}
	}
	s.ApplyWrite(req)
}

func (sh *shard) dropMeta(key uint64) {
	if m, ok := sh.meta[key]; ok {
		if m.owner != 0 {
			sh.detachOwner(m.owner, key)
		}
		delete(sh.meta, key)
	}
}

func (sh *shard) attachOwner(owner, key uint64) {
	if sh.owned == nil {
		sh.owned = make(map[uint64]map[uint64]struct{})
	}
	set := sh.owned[owner]
	if set == nil {
		set = make(map[uint64]struct{})
		sh.owned[owner] = set
	}
	set[key] = struct{}{}
}

func (sh *shard) detachOwner(owner, key uint64) {
	if set := sh.owned[owner]; set != nil {
		delete(set, key)
		if len(set) == 0 {
			delete(sh.owned, owner)
		}
	}
}

// ModCycle returns the commit cycle that last wrote key, or 0 when the
// key is absent, was deleted, or predates cycle tracking.
func (s *Store) ModCycle(key uint64) uint64 {
	return s.shards[s.ShardOf(key)].meta[key].cycle
}

// OwnerOf returns the session owning key (0 for unowned keys).
func (s *Store) OwnerOf(key uint64) uint64 {
	return s.shards[s.ShardOf(key)].meta[key].owner
}

// ExpireOwned deletes every key bound to owner, returning the deleted
// keys sorted ascending (the deletion order, so every replica's commit
// log chains identically). Callers invoke it from the serial apply
// context when a session expires.
func (s *Store) ExpireOwned(owner uint64) []uint64 {
	var keys []uint64
	for i := range s.shards {
		for k := range s.shards[i].owned[owner] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		req := wire.Request{Client: owner, Op: wire.OpDelete, Key: k}
		s.ApplyWriteAt(&req, 0, 0)
	}
	return keys
}
