package kvstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"canopus/internal/wire"
)

func w(key uint64, val string) *wire.Request {
	return &wire.Request{Op: wire.OpWrite, Key: key, Val: []byte(val)}
}

func TestApplyAndRead(t *testing.T) {
	s := New()
	s.ApplyWrite(w(1, "a"))
	s.ApplyWrite(w(1, "b"))
	if got := string(s.Read(1)); got != "b" {
		t.Fatalf("Read = %q", got)
	}
	if s.Read(2) != nil {
		t.Fatal("missing key returned a value")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestValuesAreCopied(t *testing.T) {
	s := New()
	val := []byte("abc")
	s.ApplyWrite(&wire.Request{Op: wire.OpWrite, Key: 1, Val: val})
	val[0] = 'X'
	if got := string(s.Read(1)); got != "abc" {
		t.Fatalf("store aliased caller memory: %q", got)
	}
}

func TestLogDigestOrderSensitive(t *testing.T) {
	a, b := NewLogged(), NewLogged()
	a.ApplyWrite(w(1, "x"))
	a.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(1, "x"))
	if a.LogDigest() == b.LogDigest() {
		t.Fatal("log digest must be order-sensitive")
	}
	if a.LogLen() != 2 || b.LogLen() != 2 {
		t.Fatal("log length wrong")
	}
}

func TestStateDigestOrderInsensitive(t *testing.T) {
	a, b := New(), New()
	a.ApplyWrite(w(1, "x"))
	a.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(1, "x"))
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("state digest must depend only on contents")
	}
}

// TestSnapshotDoesNotAliasLiveValues is the regression test for the
// join-transfer corruption bug: Snapshot used to hand out the live value
// slices, so a post-snapshot ApplyWrite to an existing key could rewrite
// the bytes of an in-flight state transfer. The script must be immutable
// once taken.
func TestSnapshotDoesNotAliasLiveValues(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := NewSharded(shards)
		s.ApplyWrite(w(1, "old-one"))
		s.ApplyWrite(w(2, "old-two"))
		snap := s.Snapshot()
		s.ApplyWrite(w(1, "NEW-ONE"))
		s.ApplyWrite(&wire.Request{Op: wire.OpDelete, Key: 2})
		got := map[uint64]string{}
		for i := range snap {
			got[snap[i].Key] = string(snap[i].Val)
		}
		if got[1] != "old-one" || got[2] != "old-two" {
			t.Fatalf("shards=%d: snapshot mutated by post-snapshot writes: %v", shards, got)
		}
	}
}

// TestShardedReplicaDeterminism pins the replica-equality contract of
// the sharded store: replicas with equal shard counts applying the same
// write sequence agree on LogLen/LogDigest/StateDigest; reordering
// writes within one shard changes the log digest; and StateDigest is
// shard-count independent.
func TestShardedReplicaDeterminism(t *testing.T) {
	seq := make([]*wire.Request, 0, 512)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 512; i++ {
		k := rng.Uint64() % 64
		if i%5 == 4 {
			seq = append(seq, &wire.Request{Op: wire.OpDelete, Key: k})
			continue
		}
		seq = append(seq, w(k, string(rune('a'+i%26))+"v"))
	}
	build := func(shards int) *Store {
		s := NewShardedLogged(shards)
		for _, req := range seq {
			s.ApplyWrite(req)
		}
		return s
	}
	flat := build(1)
	for _, shards := range []int{2, 4, 8} {
		a, b := build(shards), build(shards)
		if a.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", a.NumShards(), shards)
		}
		if a.LogDigest() != b.LogDigest() || a.LogLen() != b.LogLen() || a.StateDigest() != b.StateDigest() {
			t.Fatalf("shards=%d: identical sequences disagree", shards)
		}
		if a.StateDigest() != flat.StateDigest() {
			t.Fatalf("shards=%d: StateDigest depends on shard count", shards)
		}
		if a.LogLen() != flat.LogLen() {
			t.Fatalf("shards=%d: LogLen depends on shard count", shards)
		}
	}
	// In-shard reorder: swap two writes to the same key (same shard by
	// construction) — the combined digest must notice.
	reordered := NewShardedLogged(4)
	swapped := append([]*wire.Request(nil), seq...)
	var i, j = -1, -1
	for x := 0; x < len(swapped) && j < 0; x++ {
		if swapped[x].Op != wire.OpWrite {
			continue
		}
		for y := x + 1; y < len(swapped); y++ {
			if swapped[y].Op == wire.OpWrite && swapped[y].Key == swapped[x].Key &&
				string(swapped[y].Val) != string(swapped[x].Val) {
				i, j = x, y
				break
			}
		}
	}
	if j < 0 {
		t.Fatal("test sequence has no same-key write pair")
	}
	swapped[i], swapped[j] = swapped[j], swapped[i]
	for _, req := range swapped {
		reordered.ApplyWrite(req)
	}
	if reordered.LogDigest() == build(4).LogDigest() {
		t.Fatal("in-shard reorder not reflected in the combined log digest")
	}
}

// TestShardOfStable pins that shard routing is a pure function of the
// key and the shard count rounds up to a power of two.
func TestShardOfStable(t *testing.T) {
	s := NewSharded(5) // rounds to 8
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	for k := uint64(0); k < 1000; k++ {
		sh := s.ShardOf(k)
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardOf(%d) = %d out of range", k, sh)
		}
		if s.ShardOf(k) != sh {
			t.Fatalf("ShardOf(%d) unstable", k)
		}
	}
}

// Property: Snapshot rebuilds a state-digest-identical store for any
// write sequence.
func TestQuickSnapshotRebuild(t *testing.T) {
	f := func(keys []uint64, vals []uint16) bool {
		s := New()
		for i, k := range keys {
			v := "v"
			if i < len(vals) {
				v = string(rune('a'+vals[i]%26)) + "x"
			}
			s.ApplyWrite(w(k%32, v))
		}
		r := New()
		for _, req := range s.Snapshot() {
			req := req
			r.ApplyWrite(&req)
		}
		return r.StateDigest() == s.StateDigest() && r.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
