package kvstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"canopus/internal/wire"
)

func w(key uint64, val string) *wire.Request {
	return &wire.Request{Op: wire.OpWrite, Key: key, Val: []byte(val)}
}

func TestApplyAndRead(t *testing.T) {
	s := New()
	s.ApplyWrite(w(1, "a"))
	s.ApplyWrite(w(1, "b"))
	if got := string(s.Read(1)); got != "b" {
		t.Fatalf("Read = %q", got)
	}
	if s.Read(2) != nil {
		t.Fatal("missing key returned a value")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestValuesAreCopied(t *testing.T) {
	s := New()
	val := []byte("abc")
	s.ApplyWrite(&wire.Request{Op: wire.OpWrite, Key: 1, Val: val})
	val[0] = 'X'
	if got := string(s.Read(1)); got != "abc" {
		t.Fatalf("store aliased caller memory: %q", got)
	}
}

func TestLogDigestOrderSensitive(t *testing.T) {
	a, b := NewLogged(), NewLogged()
	a.ApplyWrite(w(1, "x"))
	a.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(1, "x"))
	if a.LogDigest() == b.LogDigest() {
		t.Fatal("log digest must be order-sensitive")
	}
	if a.LogLen() != 2 || b.LogLen() != 2 {
		t.Fatal("log length wrong")
	}
}

func TestStateDigestOrderInsensitive(t *testing.T) {
	a, b := New(), New()
	a.ApplyWrite(w(1, "x"))
	a.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(2, "y"))
	b.ApplyWrite(w(1, "x"))
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("state digest must depend only on contents")
	}
}

// Property: Snapshot rebuilds a state-digest-identical store for any
// write sequence.
func TestQuickSnapshotRebuild(t *testing.T) {
	f := func(keys []uint64, vals []uint16) bool {
		s := New()
		for i, k := range keys {
			v := "v"
			if i < len(vals) {
				v = string(rune('a'+vals[i]%26)) + "x"
			}
			s.ApplyWrite(w(k%32, v))
		}
		r := New()
		for _, req := range s.Snapshot() {
			req := req
			r.ApplyWrite(&req)
		}
		return r.StateDigest() == s.StateDigest() && r.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
