// Package kvstore is the replicated key-value state machine driven by
// the consensus protocols in this repository: a flat map of 64-bit keys
// to small values (the paper's workload uses 16-byte key-value pairs),
// plus an optional commit log that tests use to prove all replicas
// applied the same sequence.
package kvstore

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"canopus/internal/wire"
)

// Store implements core.StateMachine. It is not concurrency-safe: each
// protocol node owns one Store and drives it from its own event context.
type Store struct {
	data map[uint64][]byte

	// recordLog keeps an order-sensitive digest of applied writes so
	// tests can assert replica equality cheaply.
	recordLog bool
	logLen    uint64
	logDigest uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[uint64][]byte)}
}

// NewLogged creates a store that maintains an apply-order digest.
func NewLogged() *Store {
	s := New()
	s.recordLog = true
	return s
}

// ApplyWrite implements core.StateMachine. OpDelete requests remove the
// key; anything else stores the value.
func (s *Store) ApplyWrite(req *wire.Request) {
	if req.Op == wire.OpDelete {
		delete(s.data, req.Key)
	} else {
		v := make([]byte, len(req.Val))
		copy(v, req.Val)
		s.data[req.Key] = v
	}
	if s.recordLog {
		s.logLen++
		h := fnv.New64a()
		var buf [8*4 + 1]byte
		binary.LittleEndian.PutUint64(buf[0:], s.logDigest)
		binary.LittleEndian.PutUint64(buf[8:], req.Client)
		binary.LittleEndian.PutUint64(buf[16:], req.Seq)
		binary.LittleEndian.PutUint64(buf[24:], req.Key)
		buf[32] = uint8(req.Op)
		h.Write(buf[:])
		h.Write(req.Val)
		s.logDigest = h.Sum64()
	}
}

// Read implements core.StateMachine.
func (s *Store) Read(key uint64) []byte { return s.data[key] }

// Len returns the number of keys present.
func (s *Store) Len() int { return len(s.data) }

// LogLen returns the number of writes applied (when logging).
func (s *Store) LogLen() uint64 { return s.logLen }

// LogDigest returns the order-sensitive digest of applied writes.
// Two replicas with equal digests applied identical write sequences.
func (s *Store) LogDigest() uint64 { return s.logDigest }

// Snapshot implements core.StateMachine: a deterministic rebuild script
// for the current contents (apply order irrelevant; one write per key).
func (s *Store) Snapshot() []wire.Request {
	keys := make([]uint64, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]wire.Request, 0, len(keys))
	for _, k := range keys {
		out = append(out, wire.Request{Op: wire.OpWrite, Key: k, Val: s.data[k]})
	}
	return out
}

// StateDigest returns an order-insensitive digest of current contents,
// for comparing replica states regardless of how they were reached.
func (s *Store) StateDigest() uint64 {
	keys := make([]uint64, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
		h.Write(s.data[k])
	}
	return h.Sum64()
}
