// Package kvstore is the replicated key-value state machine driven by
// the consensus protocols in this repository: a flat map of 64-bit keys
// to small values (the paper's workload uses 16-byte key-value pairs),
// plus an optional commit log that tests use to prove all replicas
// applied the same sequence.
//
// The store is sharded: keys partition across N shards by key hash, and
// every operation touches exactly one shard. Operations on different
// shards are safe to run concurrently — the commit executor in
// internal/core exploits this to fan one committed cycle's bulk apply
// across workers — while operations on one shard must be serialized by
// the caller. With equal shard counts, replicas that apply the same
// write sequence hold equal LogDigest/StateDigest values: the per-shard
// order-sensitive digests are combined deterministically, and a shard's
// digest depends only on the writes routed to it, which the committed
// total order fixes identically on every replica.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"canopus/internal/wire"
)

// shard is one partition of the store: a private map plus its slice of
// the order-sensitive commit log.
type shard struct {
	data map[uint64][]byte

	// Event-plane metadata (see meta.go): per-key last-modified cycle
	// and owning session, plus the owner -> keys index driving
	// ephemeral-key expiry. Both are nil until first used.
	meta  map[uint64]keyMeta
	owned map[uint64]map[uint64]struct{}

	logLen    uint64
	logDigest uint64
}

// Store implements core.StateMachine. Each protocol node owns one Store;
// concurrent use is only permitted across distinct shards (see the
// package comment).
type Store struct {
	shards []shard
	mask   uint64 // len(shards) - 1; shard count is a power of two

	// recordLog keeps an order-sensitive digest of applied writes so
	// tests can assert replica equality cheaply.
	recordLog bool
}

// New creates an empty single-shard store.
func New() *Store { return NewSharded(1) }

// NewSharded creates an empty store with n shards (rounded up to a power
// of two, minimum 1). Replica-equality digests are only comparable
// between stores with equal shard counts.
func NewSharded(n int) *Store {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[uint64][]byte)
	}
	return s
}

// NewLogged creates a single-shard store that maintains an apply-order
// digest.
func NewLogged() *Store { return NewShardedLogged(1) }

// NewShardedLogged creates an n-shard store that maintains per-shard
// apply-order digests.
func NewShardedLogged(n int) *Store {
	s := NewSharded(n)
	s.recordLog = true
	return s
}

// NumShards returns the shard count (a power of two).
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning key. The hash is a fixed
// multiplicative mix so every replica routes identically.
func (s *Store) ShardOf(key uint64) int {
	if s.mask == 0 {
		return 0
	}
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 32) & s.mask)
}

// ApplyWrite implements core.StateMachine. OpDelete requests remove the
// key; anything else stores the value. Concurrent calls are permitted
// only for keys in distinct shards.
func (s *Store) ApplyWrite(req *wire.Request) {
	sh := &s.shards[s.ShardOf(req.Key)]
	if req.Op == wire.OpDelete {
		delete(sh.data, req.Key)
	} else {
		v := make([]byte, len(req.Val))
		copy(v, req.Val)
		sh.data[req.Key] = v
	}
	if s.recordLog {
		sh.logLen++
		h := fnv.New64a()
		var buf [8*4 + 1]byte
		binary.LittleEndian.PutUint64(buf[0:], sh.logDigest)
		binary.LittleEndian.PutUint64(buf[8:], req.Client)
		binary.LittleEndian.PutUint64(buf[16:], req.Seq)
		binary.LittleEndian.PutUint64(buf[24:], req.Key)
		buf[32] = uint8(req.Op)
		h.Write(buf[:])
		h.Write(req.Val)
		sh.logDigest = h.Sum64()
	}
}

// Read implements core.StateMachine. Concurrent calls are permitted only
// against shards no writer is touching.
func (s *Store) Read(key uint64) []byte {
	return s.shards[s.ShardOf(key)].data[key]
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].data)
	}
	return n
}

// LogLen returns the number of writes applied (when logging).
func (s *Store) LogLen() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].logLen
	}
	return n
}

// LogDigest returns the order-sensitive digest of applied writes. Two
// replicas with equal shard counts and equal digests applied write
// sequences that agree within every shard — and since a key's shard is a
// pure function of the key, replicas applying the same total order
// always agree. Single-shard stores expose the raw shard digest
// (backward compatible); sharded stores fold the per-shard digests in
// shard order.
func (s *Store) LogDigest() uint64 {
	if len(s.shards) == 1 {
		return s.shards[0].logDigest
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := range s.shards {
		binary.LittleEndian.PutUint64(buf[0:], s.shards[i].logLen)
		binary.LittleEndian.PutUint64(buf[8:], s.shards[i].logDigest)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// sortedKeys collects every key across all shards, sorted.
func (s *Store) sortedKeys() []uint64 {
	n := s.Len()
	keys := make([]uint64, 0, n)
	for i := range s.shards {
		for k := range s.shards[i].data {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Snapshot implements core.StateMachine: a deterministic rebuild script
// for the current contents (apply order irrelevant; one write per key).
// Values are copied — the script must stay valid while it is in flight
// to a joiner even if the live store keeps applying writes. Each
// entry's Client/Seq fields smuggle the key's owner session and
// last-modified cycle so a joiner rebuilds the event-plane metadata
// (core installs scripts through ApplyWriteAt(req, req.Seq,
// req.Client)).
func (s *Store) Snapshot() []wire.Request {
	keys := s.sortedKeys()
	out := make([]wire.Request, 0, len(keys))
	var arena []byte
	for _, k := range keys {
		v := s.Read(k)
		arena = append(arena, v...)
		m := s.shards[s.ShardOf(k)].meta[k]
		out = append(out, wire.Request{
			Client: m.owner, Seq: m.cycle,
			Op: wire.OpWrite, Key: k, Val: arena[len(arena)-len(v):],
		})
	}
	return out
}

// ShardState is one shard's durable image: its slice of the
// order-sensitive commit log plus its contents in sorted-key order. The
// wal snapshot writer serializes these section by section.
type ShardState struct {
	LogLen    uint64
	LogDigest uint64
	Keys      []uint64
	Vals      [][]byte
	// Cycles and Owners align with Keys: each key's last-modified commit
	// cycle and owning session (both zero for pre-event-plane images).
	Cycles []uint64
	Owners []uint64
}

// SnapshotShards renders every shard's durable image, values copied.
// Like Snapshot, the result stays valid while later writes apply.
func (s *Store) SnapshotShards() []ShardState {
	out := make([]ShardState, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		st := &out[i]
		st.LogLen, st.LogDigest = sh.logLen, sh.logDigest
		st.Keys = make([]uint64, 0, len(sh.data))
		for k := range sh.data {
			st.Keys = append(st.Keys, k)
		}
		sort.Slice(st.Keys, func(a, b int) bool { return st.Keys[a] < st.Keys[b] })
		st.Vals = make([][]byte, len(st.Keys))
		st.Cycles = make([]uint64, len(st.Keys))
		st.Owners = make([]uint64, len(st.Keys))
		var arena []byte
		for j, k := range st.Keys {
			v := sh.data[k]
			arena = append(arena, v...)
			st.Vals[j] = arena[len(arena)-len(v):]
			m := sh.meta[k]
			st.Cycles[j], st.Owners[j] = m.cycle, m.owner
		}
	}
	return out
}

// RestoreShards replaces the store's contents with a snapshot image. The
// shard count must match the one the image was taken with — per-shard
// log digests are running chains and cannot be re-partitioned.
func (s *Store) RestoreShards(states []ShardState) error {
	if len(states) != len(s.shards) {
		return fmt.Errorf("kvstore: snapshot has %d shards, store has %d", len(states), len(s.shards))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		st := &states[i]
		sh.data = make(map[uint64][]byte, len(st.Keys))
		sh.meta, sh.owned = nil, nil
		for j, k := range st.Keys {
			v := make([]byte, len(st.Vals[j]))
			copy(v, st.Vals[j])
			sh.data[k] = v
			var m keyMeta
			if j < len(st.Cycles) {
				m.cycle = st.Cycles[j]
			}
			if j < len(st.Owners) {
				m.owner = st.Owners[j]
			}
			if m != (keyMeta{}) {
				if sh.meta == nil {
					sh.meta = make(map[uint64]keyMeta, len(st.Keys))
				}
				sh.meta[k] = m
				if m.owner != 0 {
					sh.attachOwner(m.owner, k)
				}
			}
		}
		sh.logLen, sh.logDigest = st.LogLen, st.LogDigest
	}
	return nil
}

// StateDigest returns an order-insensitive digest of current contents,
// for comparing replica states regardless of how they were reached (it
// is also shard-count independent).
func (s *Store) StateDigest() uint64 {
	keys := s.sortedKeys()
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
		h.Write(s.Read(k))
	}
	return h.Sum64()
}
