package kvstore

import (
	"sort"
	"sync"
	"sync/atomic"

	"canopus/internal/wire"
)

// SessionWindow bounds how many applied-but-uncompacted sequence numbers
// one session retains. The dedup table normally compacts contiguously
// applied seqs away; gaps (an op the client abandoned after a double
// failure, or reordered pipelined retries) park entries until the window
// overflows, at which point the floor is forced forward. An op older
// than the window that straggles in afterwards is treated as a duplicate
// — clients bound their pipelines far below this.
const SessionWindow = 1024

// SessionVerdict classifies one committed session mutation.
type SessionVerdict uint8

const (
	// SessionApply: first sight of this (session, seq) — apply it to the
	// state machine and Record the reply.
	SessionApply SessionVerdict = iota
	// SessionDuplicate: already applied — return the cached reply, do
	// not touch the state machine.
	SessionDuplicate
	// SessionUnknown: the session is not in the table (expired, or never
	// registered) — do not apply; the serving node reports expiry.
	SessionUnknown
)

// sessionEntry is one session's dedup state.
type sessionEntry struct {
	low        uint64            // every seq < low is known applied (replies discarded)
	max        uint64            // highest applied seq
	applied    map[uint64][]byte // applied seqs >= low -> cached reply
	lastActive uint64            // commit cycle of the last mutation (or registration)
	// The most recent transaction's (seq, result), surviving floor
	// compaction: unlike a plain mutation's bare ack, a retried txn must
	// learn whether the original committed or aborted even after its seq
	// compacted away. Only the latest txn per session is retained.
	txnSeq uint64
	txnVal []byte
}

// SessionTable is the replicated client-session dedup table: session
// registrations, expiries, and per-mutation classification all happen at
// commit boundaries in the committed total order, so every replica holds
// an identical table (the same invariant as the membership view and the
// lease table). A mutex makes it safe to drive from two contexts at
// once: the machine turn classifies (Begin/Record) while the commit
// executor records and looks up transaction results at apply time.
type SessionTable struct {
	mu       sync.Mutex
	sessions map[uint64]*sessionEntry
	// occ mirrors len(sessions) so metrics scrapers on other goroutines
	// can read the occupancy without synchronizing with the owner.
	occ atomic.Int64
}

// NewSessionTable creates an empty table.
func NewSessionTable() *SessionTable {
	return &SessionTable{sessions: make(map[uint64]*sessionEntry)}
}

// Register adds a session at commit cycle. Re-registering an existing ID
// is a no-op (a duplicate registration proposal).
func (t *SessionTable) Register(id, cycle uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[id]; ok {
		return
	}
	t.sessions[id] = &sessionEntry{low: 1, applied: make(map[uint64][]byte), lastActive: cycle}
	t.occ.Store(int64(len(t.sessions)))
}

// Expire removes a session and its dedup state.
func (t *SessionTable) Expire(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sessions, id)
	t.occ.Store(int64(len(t.sessions)))
}

// Occupancy returns the number of registered sessions. Unlike Len it is
// safe to call from any goroutine (it reads an atomic mirror), which is
// what the metrics registry samples at scrape time.
func (t *SessionTable) Occupancy() int64 { return t.occ.Load() }

// Has reports whether a session is registered.
func (t *SessionTable) Has(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sessions[id]
	return ok
}

// Len returns the number of registered sessions.
func (t *SessionTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// Begin classifies one committed mutation (session id, seq) at commit
// cycle, refreshing the session's activity clock. On SessionDuplicate
// the cached reply is returned (nil once the seq has been compacted
// below the floor — for the KV state machine every mutation's reply is a
// bare acknowledgement anyway).
func (t *SessionTable) Begin(id, seq, cycle uint64) (cached []byte, verdict SessionVerdict) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.sessions[id]
	if e == nil {
		return nil, SessionUnknown
	}
	e.lastActive = cycle
	if seq < e.low {
		return nil, SessionDuplicate
	}
	if v, ok := e.applied[seq]; ok {
		return v, SessionDuplicate
	}
	return nil, SessionApply
}

// Record caches the reply of a just-applied (session, seq) — the seq
// Begin classified SessionApply — then compacts: the floor advances over
// contiguously applied seqs, and past SessionWindow outstanding entries
// it is forced forward.
func (t *SessionTable) Record(id, seq uint64, val []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(id, seq, val)
}

func (t *SessionTable) record(id, seq uint64, val []byte) {
	e := t.sessions[id]
	if e == nil {
		return
	}
	if val != nil {
		v := make([]byte, len(val))
		copy(v, val)
		val = v
	}
	e.applied[seq] = val
	if seq > e.max {
		e.max = seq
	}
	for {
		if _, ok := e.applied[e.low]; !ok {
			break
		}
		delete(e.applied, e.low)
		e.low++
	}
	if e.max >= SessionWindow && e.max-SessionWindow+1 > e.low {
		floor := e.max - SessionWindow + 1
		for s := range e.applied {
			if s < floor {
				delete(e.applied, s)
			}
		}
		e.low = floor
		// Re-compact: the forced floor may now sit on applied seqs.
		for {
			if _, ok := e.applied[e.low]; !ok {
				break
			}
			delete(e.applied, e.low)
			e.low++
		}
	}
}

// RecordTxn records a transaction's result bytes for (session, seq):
// the regular dedup Record plus the compaction-surviving latest-txn
// slot. Safe to call from the apply context while the machine turn
// classifies other requests.
func (t *SessionTable) RecordTxn(id, seq uint64, val []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.sessions[id]
	if e == nil {
		return
	}
	if seq >= e.low {
		t.record(id, seq, val)
	}
	if seq >= e.txnSeq {
		v := make([]byte, len(val))
		copy(v, val)
		e.txnSeq, e.txnVal = seq, v
	}
}

// CachedTxn returns the recorded result of txn (session, seq), or nil
// when it was never recorded or has been displaced by a later txn.
func (t *SessionTable) CachedTxn(id, seq uint64) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.sessions[id]
	if e == nil {
		return nil
	}
	if v, ok := e.applied[seq]; ok && v != nil {
		return v
	}
	if seq == e.txnSeq {
		return e.txnVal
	}
	return nil
}

// IdleBefore returns (sorted, for replayable traces) the sessions whose
// last activity is at or before the given cycle — the idle-GC scan.
func (t *SessionTable) IdleBefore(cycle uint64) []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ids []uint64
	for id, e := range t.sessions {
		if e.lastActive <= cycle {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Snapshot renders the table for a join-protocol state transfer,
// deterministically ordered. The latest-txn slot rides along as an
// Applied entry (possibly below the floor), so a joiner can still
// answer a retried txn with the original outcome.
func (t *SessionTable) Snapshot() []wire.SessionState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.sessions) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(t.sessions))
	for id := range t.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]wire.SessionState, 0, len(ids))
	for _, id := range ids {
		e := t.sessions[id]
		st := wire.SessionState{ID: id, Low: e.low, LastActive: e.lastActive}
		stickyTxn := e.txnSeq > 0
		if _, ok := e.applied[e.txnSeq]; ok {
			stickyTxn = false
		}
		if len(e.applied) > 0 || stickyTxn {
			seqs := make([]uint64, 0, len(e.applied)+1)
			for s := range e.applied {
				seqs = append(seqs, s)
			}
			if stickyTxn {
				seqs = append(seqs, e.txnSeq)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			st.Applied = make([]wire.SessionReply, 0, len(seqs))
			for _, s := range seqs {
				v := e.applied[s]
				if stickyTxn && s == e.txnSeq {
					v = e.txnVal
				}
				st.Applied = append(st.Applied, wire.SessionReply{Seq: s, Val: v})
			}
		}
		out = append(out, st)
	}
	return out
}

// Restore replaces the table's contents with a snapshot (the join
// protocol's state install).
func (t *SessionTable) Restore(states []wire.SessionState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = make(map[uint64]*sessionEntry, len(states))
	for i := range states {
		st := &states[i]
		e := &sessionEntry{low: st.Low, applied: make(map[uint64][]byte, len(st.Applied)), lastActive: st.LastActive}
		if e.low == 0 {
			e.low = 1
		}
		e.max = e.low - 1
		for j := range st.Applied {
			rep := &st.Applied[j]
			var v []byte
			if rep.Val != nil {
				v = make([]byte, len(rep.Val))
				copy(v, rep.Val)
			}
			e.applied[rep.Seq] = v
			if rep.Seq > e.max {
				e.max = rep.Seq
			}
		}
		t.sessions[st.ID] = e
	}
	t.occ.Store(int64(len(t.sessions)))
}
