// Command mdlinkcheck validates the repository's markdown cross-links
// offline: every relative link and image target in the given files must
// exist on disk (anchors are stripped; http/https/mailto links are
// skipped — CI must not depend on external availability). Exit status 1
// lists every broken link.
//
//	mdlinkcheck README.md ROADMAP.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links/images: [text](target) and
// ![alt](target). Reference-style links are rare here and out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
			broken++
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue // same-document anchor
				}
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q (%s)\n", file, m[1], resolved)
				broken++
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}
