// Command lotviz prints a Leaf-Only Tree, reproducing Figure 1 of the
// paper (27 pnodes in 9 super-leaves of 3... or any shape you ask for).
//
//	lotviz -superleaves 9 -size 3 -fanout 3
package main

import (
	"flag"
	"fmt"
	"os"

	"canopus/internal/lot"
	"canopus/internal/wire"
)

func main() {
	sls := flag.Int("superleaves", 9, "number of super-leaves (racks)")
	size := flag.Int("size", 3, "pnodes per super-leaf")
	fanout := flag.Int("fanout", 3, "vnode fanout (0 = flat: all under the root)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			`usage: lotviz [-superleaves N] [-size N] [-fanout N]

Print a Canopus Leaf-Only Tree: its vnodes, super-leaves and emulation
tables. The tree height it reports is the number of rounds in one
consensus cycle. The default shape reproduces Figure 1 of the paper
(27 pnodes in 9 super-leaves of 3, fanout 3).

`)
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := lot.Config{Fanout: *fanout}
	id := wire.NodeID(0)
	for s := 0; s < *sls; s++ {
		var members []wire.NodeID
		for n := 0; n < *size; n++ {
			members = append(members, id)
			id++
		}
		cfg.SuperLeaves = append(cfg.SuperLeaves, members)
	}
	tree, err := lot.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotviz:", err)
		os.Exit(1)
	}
	fmt.Printf("LOT: %d pnodes, %d super-leaves, height %d (consensus cycle = %d rounds)\n\n",
		*sls**size, *sls, tree.Height, tree.Height)
	fmt.Print(tree.String())
}
