// Command canopus-server runs one live Canopus node over TCP: the same
// protocol engine the simulator drives, behind real sockets, plus a
// line-oriented client port (GET <key> / PUT <key> <value> / QUIT).
//
// A three-node super-leaf on localhost:
//
//	canopus-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -superleaves 0,1,2 -client 127.0.0.1:8000 &
//	canopus-server -id 1 -peers ...same... -client 127.0.0.1:8001 &
//	canopus-server -id 2 -peers ...same... -client 127.0.0.1:8002 &
//	canopus-client -addr 127.0.0.1:8000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/transport"
	"canopus/internal/wire"
)

func main() {
	id := flag.Int("id", 0, "this node's ID (index into -peers)")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses, index = node ID")
	slFlag := flag.String("superleaves", "", "semicolon-separated super-leaves of comma-separated node IDs (default: all in one)")
	clientAddr := flag.String("client", "", "client-facing listen address (default: none)")
	flag.Parse()

	addrs := strings.Split(*peersFlag, ",")
	if len(addrs) < 1 || addrs[0] == "" {
		log.Fatal("canopus-server: -peers is required")
	}
	peers := make(map[wire.NodeID]string, len(addrs))
	for i, a := range addrs {
		peers[wire.NodeID(i)] = strings.TrimSpace(a)
	}

	var sls [][]wire.NodeID
	if *slFlag == "" {
		var all []wire.NodeID
		for i := range addrs {
			all = append(all, wire.NodeID(i))
		}
		sls = [][]wire.NodeID{all}
	} else {
		for _, group := range strings.Split(*slFlag, ";") {
			var members []wire.NodeID
			for _, tok := range strings.Split(group, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					log.Fatalf("canopus-server: bad -superleaves entry %q", tok)
				}
				members = append(members, wire.NodeID(v))
			}
			sls = append(sls, members)
		}
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		log.Fatal("canopus-server: ", err)
	}

	self := wire.NodeID(*id)
	runner, err := transport.NewRunner(self, peers[self], peers, 42)
	if err != nil {
		log.Fatal("canopus-server: ", err)
	}
	store := kvstore.New()

	type pending struct{ ch chan []byte }
	waiting := make(map[uint64]*pending)
	node := core.NewNode(core.Config{Tree: tree, Self: self}, store, core.Callbacks{
		OnReply: func(req *wire.Request, val []byte) {
			if p, ok := waiting[req.Seq]; ok {
				delete(waiting, req.Seq)
				p.ch <- val
			}
		},
	})

	if *clientAddr != "" {
		ln, err := net.Listen("tcp", *clientAddr)
		if err != nil {
			log.Fatal("canopus-server: client listen: ", err)
		}
		log.Printf("node %v: client API on %s", self, ln.Addr())
		var seq uint64
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func(conn net.Conn) {
					defer conn.Close()
					sc := bufio.NewScanner(conn)
					for sc.Scan() {
						fields := strings.Fields(sc.Text())
						if len(fields) == 0 {
							continue
						}
						var req wire.Request
						switch strings.ToUpper(fields[0]) {
						case "PUT":
							if len(fields) < 3 {
								fmt.Fprintln(conn, "ERR usage: PUT <key> <value>")
								continue
							}
							k, err := strconv.ParseUint(fields[1], 10, 64)
							if err != nil {
								fmt.Fprintln(conn, "ERR bad key")
								continue
							}
							req = wire.Request{Client: uint64(self) + 1, Op: wire.OpWrite, Key: k, Val: []byte(strings.Join(fields[2:], " "))}
						case "GET":
							if len(fields) != 2 {
								fmt.Fprintln(conn, "ERR usage: GET <key>")
								continue
							}
							k, err := strconv.ParseUint(fields[1], 10, 64)
							if err != nil {
								fmt.Fprintln(conn, "ERR bad key")
								continue
							}
							req = wire.Request{Client: uint64(self) + 1, Op: wire.OpRead, Key: k}
						case "QUIT":
							return
						default:
							fmt.Fprintln(conn, "ERR unknown command")
							continue
						}
						done := &pending{ch: make(chan []byte, 1)}
						runner.Invoke(func() {
							seq++
							req.Seq = seq
							waiting[req.Seq] = done
							node.Submit(req)
						})
						val := <-done.ch
						if req.Op == wire.OpRead {
							if val == nil {
								fmt.Fprintln(conn, "NIL")
							} else {
								fmt.Fprintf(conn, "VALUE %s\n", val)
							}
						} else {
							fmt.Fprintln(conn, "OK")
						}
					}
				}(conn)
			}
		}()
	}

	log.Printf("node %v: consensus on %s (super-leaf %d of %d, LOT height %d)",
		self, peers[self], tree.SuperLeafOf(self), tree.NumSuperLeaves(), tree.Height)
	runner.Serve(node)
}
