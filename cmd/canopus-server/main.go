// Command canopus-server runs one live Canopus node over TCP: the same
// protocol engine the simulator drives, behind real sockets, plus a
// client port speaking both the interactive text protocol
// (GET <key> / PUT <key> <value> / QUIT) and the pipelined binary
// protocol (see internal/wire's client codec and the README).
//
// A three-node super-leaf on localhost:
//
//	canopus-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -superleaves 0,1,2 -client 127.0.0.1:8000 &
//	canopus-server -id 1 -peers ...same... -client 127.0.0.1:8001 &
//	canopus-server -id 2 -peers ...same... -client 127.0.0.1:8002 &
//	canopus-client -addr 127.0.0.1:8000
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting client requests, waits for in-flight requests to be
// answered (bounded by -drain), flushes its peers' transport queues and
// only then closes the sockets — clients never see torn frames.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"canopus/internal/adminsrv"
	"canopus/internal/core"
	"canopus/internal/events"
	"canopus/internal/kvstore"
	"canopus/internal/livecluster"
	"canopus/internal/lot"
	"canopus/internal/metrics"
	"canopus/internal/pprofutil"
	"canopus/internal/transport"
	"canopus/internal/wal"
	"canopus/internal/wire"
)

func main() {
	id := flag.Int("id", 0, "this node's ID (index into -peers)")
	peersFlag := flag.String("peers", "", "comma-separated peer addresses, index = node ID")
	slFlag := flag.String("superleaves", "", "semicolon-separated super-leaves of comma-separated node IDs (default: all in one)")
	clientAddr := flag.String("client", "", "client-facing listen address (default: none)")
	adminAddr := flag.String("admin-addr", "", "HTTP admin gateway listen address: /metrics, /healthz, /status, POST /snapshot (default: none)")
	adminChaos := flag.Bool("admin-chaos", false, "enable the gateway's POST /chaos fault-injection verb (game-days only)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain bound for in-flight client requests")
	join := flag.Bool("join", false, "enter through the join protocol (§4.6) instead of participating from cycle 1 — how an evicted node re-enters a live cluster")
	leafTimeout := flag.Duration("leaf-timeout", 0, "arm super-leaf eviction: a leaf silent for this long is evicted so the rest keeps committing (0 = stall forever, §6; same value on every node)")
	stallThreshold := flag.Duration("stall-threshold", 0, "arm the liveness detector: /healthz degrades after this much commit-free wedge with cycles outstanding (0 = off)")
	exitOnEvict := flag.Bool("exit-on-evict", false, "exit with status 3 when told this node's super-leaf was evicted, so a supervisor can restart it with -join")
	applyWorkers := flag.Int("apply-workers", 0, "commit-apply workers: 0 = auto (min(4, GOMAXPROCS), parallel pipeline), <0 = serial in-turn apply")
	shards := flag.Int("shards", 8, "replica store shard count (rounded up to a power of two)")
	dataDir := flag.String("data-dir", "", "durable storage directory: group-commit WAL + snapshots, recovered at boot (default: in-memory only)")
	snapshotCycles := flag.Int("snapshot-cycles", 0, "snapshot cadence in committed cycles (0 = default, <0 = disable periodic snapshots)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path (stopped at graceful shutdown)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this path at graceful shutdown")
	flag.Parse()

	addrs := strings.Split(*peersFlag, ",")
	if len(addrs) < 1 || addrs[0] == "" {
		log.Fatal("canopus-server: -peers is required")
	}
	peers := make(map[wire.NodeID]string, len(addrs))
	for i, a := range addrs {
		peers[wire.NodeID(i)] = strings.TrimSpace(a)
	}

	var sls [][]wire.NodeID
	if *slFlag == "" {
		var all []wire.NodeID
		for i := range addrs {
			all = append(all, wire.NodeID(i))
		}
		sls = [][]wire.NodeID{all}
	} else {
		for _, group := range strings.Split(*slFlag, ";") {
			var members []wire.NodeID
			for _, tok := range strings.Split(group, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					log.Fatalf("canopus-server: bad -superleaves entry %q", tok)
				}
				members = append(members, wire.NodeID(v))
			}
			sls = append(sls, members)
		}
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		log.Fatal("canopus-server: ", err)
	}

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal("canopus-server: ", err)
	}
	defer stopProfiles()

	self := wire.NodeID(*id)
	runner, err := transport.NewRunner(self, peers[self], peers, 42)
	if err != nil {
		log.Fatal("canopus-server: ", err)
	}
	st := kvstore.NewSharded(*shards)
	nodeCfg := core.Config{
		Tree: tree, Self: self,
		ApplyWorkers:   livecluster.ResolveApplyWorkers(*applyWorkers),
		LeafTimeout:    *leafTimeout,
		StallThreshold: *stallThreshold,
	}
	var mgr *wal.Manager
	if *dataDir != "" {
		if *join {
			// An evicted node's Leave is committed; recovering its old
			// disk would resurrect pre-eviction state the cluster has
			// moved past. Joining is a state-less re-entry by design.
			log.Fatal("canopus-server: -join and -data-dir are mutually exclusive (a joiner re-enters state-less)")
		}
		mgr, err = wal.Open(wal.Options{Dir: *dataDir, Store: st, SnapshotCycles: *snapshotCycles})
		if err != nil {
			log.Fatal("canopus-server: ", err)
		}
		// Closed after the node (LIFO defers): the apply executor must
		// flush its last durability batch first.
		defer func() {
			if err := mgr.Close(); err != nil {
				log.Printf("node %v: wal close: %v", self, err)
			}
		}()
		nodeCfg.Durability = mgr
	}
	if os.Getenv("CANOPUS_DEBUG_JOIN") != "" {
		core.DebugHook = func(who wire.NodeID, event string, cycle uint64, detail string) {
			if strings.HasPrefix(event, "join") || strings.HasPrefix(event, "member") || strings.HasPrefix(event, "leaf") || strings.HasPrefix(event, "evict") {
				log.Printf("debug %v: %s cycle=%d %s", who, event, cycle, detail)
			}
		}
	}
	cbs := core.Callbacks{}
	if *exitOnEvict {
		// Fires on the machine turn when an Evicted notice proves the
		// rest of the cluster committed this node's Leave: this
		// incarnation can never make progress again. The short delay
		// lets the log line and any in-flight admin replies out first.
		cbs.OnEvicted = func() {
			log.Printf("node %v: super-leaf evicted by the cluster; exiting for a -join restart", self)
			time.AfterFunc(100*time.Millisecond, func() { os.Exit(3) })
		}
	}
	var node *core.Node
	if *join {
		node = core.NewJoiner(nodeCfg, st, cbs)
	} else {
		node = core.NewNode(nodeCfg, st, cbs)
	}
	defer node.Close()

	// The event hub feeds protocol v3 watches from the committed apply
	// stream. Recovery replay does not publish events; its cycles land as
	// a gap the hub treats as evicted history, so no watch can resume
	// across state it never saw.
	hub := events.NewHub(events.Options{})
	node.SetOnEvents(hub.Publish)

	// Bind the client address before recovery (a restarting node owns its
	// advertised endpoint immediately) but accept only after recovery has
	// replayed the log — no client ever reads mid-recovery state.
	var port *livecluster.ClientPort
	if *clientAddr != "" {
		port, err = livecluster.NewClientPort(runner, node, *clientAddr)
		if err != nil {
			log.Fatal("canopus-server: ", err)
		}
		port.SetDigestFunc(livecluster.DigestSource(runner, node, st))
		port.SetHub(hub)
	}

	// The admin gateway binds AND serves before recovery — one notch
	// earlier than the client port's accept — so /healthz reports
	// "recovering" during WAL replay instead of connection-refused.
	// /status and /metrics are live throughout; the Status document
	// carries only the phase until SetPhase("ok").
	var adm *adminsrv.Server
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		nodeLabel := metrics.Label{Key: "node", Value: strconv.Itoa(*id)}
		node.RegisterMetrics(reg, nodeLabel)
		runner.RegisterMetrics(reg, nodeLabel)
		if port != nil {
			port.RegisterMetrics(reg, nodeLabel)
		}
		if mgr != nil {
			mgr.RegisterMetrics(reg, nodeLabel)
		}
		hub.RegisterMetrics(reg, nodeLabel)
		cfg := adminsrv.Config{
			Registry: reg,
			Node:     int32(self),
			Status:   livecluster.StatusSource(runner, node, st, mgr, hub),
			Degraded: func() string {
				if node.StallSuspected() {
					return "stalled"
				}
				return ""
			},
		}
		if mgr != nil {
			walMgr := mgr
			cfg.Snapshot = func() error { walMgr.RequestSnapshot(); return nil }
		}
		if *adminChaos {
			cfg.Chaos = chaosActions(self, port)
		}
		adm, err = adminsrv.Listen(*adminAddr, cfg)
		if err != nil {
			log.Fatal("canopus-server: ", err)
		}
		defer adm.Close()
		log.Printf("node %v: admin gateway on %s (chaos %v)", self, adm.Addr(), *adminChaos)
	}

	if mgr != nil {
		info, err := mgr.Recover(node)
		if err != nil {
			log.Fatal("canopus-server: recovery: ", err)
		}
		if info.Durable > 0 {
			log.Printf("node %v: recovered to cycle %d from %s (snapshot at cycle %d, %d WAL records replayed)",
				self, info.Durable, *dataDir, info.SnapshotCycle, info.Replayed)
		}
	}
	if port != nil {
		port.AcceptClients()
		log.Printf("node %v: client API on %s (text + binary)", self, port.Addr())
	}
	if adm != nil {
		adm.SetPhase("ok")
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("node %v: %v: draining...", self, sig)
		if port != nil {
			if port.Stop(*drain) {
				log.Printf("node %v: client port drained", self)
			} else {
				log.Printf("node %v: drain timed out after %v; %d requests unanswered",
					self, *drain, port.Outstanding())
			}
		}
		runner.Drain(2 * time.Second)
		runner.Close()
		// Serve returns once the listener closes; nothing more to do here.
	}()

	log.Printf("node %v: consensus on %s (super-leaf %d of %d, LOT height %d)",
		self, peers[self], tree.SuperLeafOf(self), tree.NumSuperLeaves(), tree.Height)
	runner.Serve(node)
	log.Printf("node %v: shut down", self)
}

// chaosActions maps POST /chaos actions onto live fault injection. The
// verbs mirror what the in-process fault tests do: drop-replies opens
// the committed-but-unacknowledged reply-loss window, serve-replies
// closes it, kill crash-stops the process (exit 137, as SIGKILL would)
// after a short delay so the HTTP response gets out first.
func chaosActions(self wire.NodeID, port *livecluster.ClientPort) func(string) error {
	return func(action string) error {
		switch action {
		case "drop-replies":
			if port == nil {
				return errors.New("no client port")
			}
			port.SetDropReplies(true)
		case "serve-replies":
			if port == nil {
				return errors.New("no client port")
			}
			port.SetDropReplies(false)
		case "kill":
			log.Printf("node %v: chaos kill requested", self)
			time.AfterFunc(100*time.Millisecond, func() { os.Exit(137) })
		default:
			return fmt.Errorf("unknown chaos action %q (want drop-replies, serve-replies or kill)", action)
		}
		return nil
	}
}
