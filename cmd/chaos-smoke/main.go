// Command chaos-smoke is the CI live-chaos gate across real process
// boundaries. It boots three canopus-server processes as three
// single-node super-leaves with every inter-node byte routed through a
// chaosnet proxy fabric owned by this orchestrator, then walks the full
// operator storyline of a super-leaf outage:
//
//  1. blackhole node 2's super-leaf at the socket layer;
//  2. wait for the survivors to evict it — observed the way an operator
//     would, by scraping canopus_core_leaf_evictions_total through the
//     admin gateway — and require the eviction within 4× the configured
//     -leaf-timeout;
//  3. drive post-eviction writes to prove the survivors kept serving;
//  4. heal; the evicted process learns its fate from the survivors'
//     dead-in-view notices and exits with status 3 (-exit-on-evict);
//  5. restart it with -join and pass only once all three replicas
//     converge to one non-zero state digest that serves the
//     post-eviction writes from the rejoined node.
//
// Usage:
//
//	chaos-smoke -server ./bin/canopus-server [-timeout 60s]
//
// Exit status 0 means the live eviction/readmission loop held end to
// end across process boundaries.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"canopus/admin"
	"canopus/client"
	"canopus/internal/chaosnet"
	"canopus/internal/wire"
)

const nodes = 3

func main() {
	server := flag.String("server", "", "path to the canopus-server binary (required)")
	leafTimeout := flag.Duration("leaf-timeout", 500*time.Millisecond, "eviction timeout handed to the servers")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for each phase")
	flag.Parse()
	if *server == "" {
		log.Fatal("chaos-smoke: -server is required")
	}

	peerAddrs := reservePorts(nodes)
	clientAddrs := reservePorts(nodes)
	adminAddrs := reservePorts(nodes)

	// The fabric lives in the orchestrator: each node's -peers entry for
	// every OTHER node is that directed link's proxy, so all inter-node
	// traffic is impairable while client and admin ports stay direct.
	fabric := chaosnet.New(chaosnet.Config{Logf: log.Printf, Seed: 42})
	defer fabric.Close()
	proxied := make([][]string, nodes)
	for i := range proxied {
		proxied[i] = make([]string, nodes)
		for j := range proxied[i] {
			if i == j {
				proxied[i][j] = peerAddrs[i]
				continue
			}
			addr, err := fabric.AddLink(wire.NodeID(i), wire.NodeID(j), peerAddrs[j])
			if err != nil {
				log.Fatalf("chaos-smoke: link %d->%d: %v", i, j, err)
			}
			proxied[i][j] = addr
		}
	}

	admins := make([]*admin.Client, nodes)
	for i := range admins {
		admins[i] = admin.New(adminAddrs[i])
	}

	start := func(i int, join bool) *exec.Cmd {
		peers := proxied[i][0]
		for _, a := range proxied[i][1:] {
			peers += "," + a
		}
		args := []string{
			"-id", strconv.Itoa(i),
			"-peers", peers,
			"-superleaves", "0;1;2",
			"-client", clientAddrs[i],
			"-admin-addr", adminAddrs[i],
			"-leaf-timeout", leafTimeout.String(),
			"-exit-on-evict",
		}
		if join {
			args = append(args, "-join")
		}
		cmd := exec.Command(*server, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("chaos-smoke: start node %d: %v", i, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		procs[i] = start(i, false)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	ctx := context.Background()
	waitAllHealthy(admins, *timeout)
	log.Print("chaos-smoke: cluster up; seeding pre-partition writes")
	cl := dial(clientAddrs[0])
	defer cl.Close()
	for k := uint64(1); k <= 6; k++ {
		if err := cl.Put(ctx, k, []byte("pre")); err != nil {
			log.Fatalf("chaos-smoke: pre-partition put %d: %v", k, err)
		}
	}

	// Blackhole node 2 and wedge one write inside it through its direct
	// client port: the cycle that write starts keeps retrying cross-leaf
	// fetches, and the first retry to land after the heal draws the
	// Evicted notice that -exit-on-evict turns into exit status 3.
	log.Print("chaos-smoke: partitioning node 2")
	fabric.Partition([]wire.NodeID{0, 1}, []wire.NodeID{2})
	cut := time.Now()
	wedge := dial(clientAddrs[2])
	defer wedge.Close()
	_ = wedge.PutAsync(200, []byte("doomed"))

	// The post-partition writes go in right away: eviction rounds are
	// driven by cycles wedged on the dead leaf's missing state, so the
	// survivors need in-flight load to notice the silence. The writes
	// must complete once (and only once) the leaf is evicted.
	post := make([]*client.Future, 0, 5)
	for k := uint64(100); k < 105; k++ {
		post = append(post, cl.PutAsync(k, []byte("post")))
	}

	// Eviction, observed through the survivors' metrics.
	evictBudget := 4 * *leafTimeout
	waitMetric(ctx, admins[0], "canopus_core_leaf_evictions_total", 1, evictBudget+*timeout)
	evictIn := time.Since(cut)
	if evictIn > evictBudget {
		log.Fatalf("chaos-smoke: eviction took %v, budget 4*leaf-timeout = %v", evictIn, evictBudget)
	}
	log.Printf("chaos-smoke: survivors evicted node 2's leaf in %v", evictIn)
	for i, f := range post {
		if _, err := f.Wait(ctx); err != nil {
			log.Fatalf("chaos-smoke: post-partition put %d: %v", i, err)
		}
	}

	// Heal, then require the evicted process to discover its fate and
	// exit 3 so a supervisor (here: us) can bounce it back in as a
	// joiner.
	log.Print("chaos-smoke: healing; waiting for node 2 to exit on eviction")
	fabric.Heal()
	exited := make(chan error, 1)
	go func() { exited <- procs[2].Wait() }()
	select {
	case err := <-exited:
		code := procs[2].ProcessState.ExitCode()
		if code != 3 {
			log.Fatalf("chaos-smoke: evicted node exited %d (err %v), want 3", code, err)
		}
	case <-time.After(*timeout):
		log.Fatalf("chaos-smoke: evicted node did not exit within %v of the heal", *timeout)
	}
	log.Print("chaos-smoke: node 2 exited 3; restarting with -join")
	procs[2] = start(2, true)

	waitAllHealthy(admins, *timeout)
	state := converge(ctx, admins, *timeout)
	got, err := dial(clientAddrs[2]).Get(ctx, 104)
	if err != nil || string(got) != "post" {
		log.Fatalf("chaos-smoke: Get(104) via rejoined node = %q, %v", got, err)
	}
	log.Printf("chaos-smoke: PASS: evicted in %v, readmitted; all %d replicas at state digest %016x", evictIn, nodes, state)

	for i, p := range procs {
		if err := p.Process.Signal(os.Interrupt); err != nil {
			log.Fatalf("chaos-smoke: stop node %d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			log.Fatalf("chaos-smoke: node %d shutdown: %v", i, err)
		}
		procs[i] = nil
	}
}

func dial(addr string) *client.Client {
	cl, err := client.New(client.Config{Endpoints: []string{addr}, RequestTimeout: 30 * time.Second})
	if err != nil {
		log.Fatal("chaos-smoke: ", err)
	}
	return cl
}

// reservePorts binds n loopback listeners to pick free ports, then
// releases them for the servers to claim.
func reservePorts(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal("chaos-smoke: ", err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func waitAllHealthy(admins []*admin.Client, timeout time.Duration) {
	for i, cl := range admins {
		deadline := time.Now().Add(timeout)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			h, err := cl.Health(ctx)
			cancel()
			if err == nil && h.Status == "ok" {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("chaos-smoke: node %d not healthy after %v (status %q, err %v)", i, timeout, h.Status, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// waitMetric polls one gateway's /metrics until the summed family
// reaches min.
func waitMetric(ctx context.Context, cl *admin.Client, family string, min float64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		series, err := cl.Metrics(ctx)
		if err == nil {
			total := 0.0
			for key, v := range series {
				if len(key) >= len(family) && key[:len(family)] == family {
					total += v
				}
			}
			if total >= min {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("chaos-smoke: %s did not reach %v within %v", family, min, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// converge waits for every replica's admin digest to agree on one
// non-zero state digest and returns it.
func converge(ctx context.Context, admins []*admin.Client, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		var ref uint64
		agree := true
		for i, cl := range admins {
			d, err := cl.Digest(ctx)
			if err != nil || d.State == 0 {
				agree = false
				break
			}
			if i == 0 {
				ref = d.State
			} else if d.State != ref {
				agree = false
				break
			}
		}
		if agree {
			return ref
		}
		if time.Now().After(deadline) {
			states := make([]string, len(admins))
			for i, cl := range admins {
				if d, err := cl.Digest(ctx); err == nil {
					states[i] = fmt.Sprintf("%016x", d.State)
				} else {
					states[i] = err.Error()
				}
			}
			log.Fatalf("chaos-smoke: replicas did not converge within %v: %v", timeout, states)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
