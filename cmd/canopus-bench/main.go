// Command canopus-bench regenerates the tables and figures of the
// Canopus paper's evaluation section (§8) on the discrete-event
// simulator. Full runs take tens of minutes (the throughput searches
// simulate many multi-second deployments); -quick trades resolution for
// CI-friendly runtimes.
//
// Usage:
//
//	canopus-bench -exp fig4a            # Figure 4(a)
//	canopus-bench -exp all -quick       # everything, fast
//	canopus-bench -exp live -quick      # real-socket loopback cluster
//
// Experiments: table1, fig4a, fig4b, fig5, fig6, fig7, all (the
// virtual-time set), plus two real-socket modes "all" excludes so
// figure regeneration stays deterministic: live, a loopback-TCP cluster
// driven through the binary client protocol (with -json it also writes
// its metrics to the given path, used to regenerate BENCH_live.json),
// and live-chaos, the fault-injection campaign catalog run against the
// chaosnet proxy fabric (exits non-zero on any violated budget — the CI
// live-chaos-smoke gate).
//
// -cpuprofile / -memprofile capture pprof evidence for performance
// work, e.g.:
//
//	canopus-bench -exp live -quick -cpuprofile live.cpu.pprof
//	go tool pprof -top live.cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"canopus/internal/harness"
	"canopus/internal/pprofutil"
	"canopus/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig4a|fig4b|fig5|fig6|fig7|all|live|live-chaos")
	quick := flag.Bool("quick", false, "short windows and coarse search (CI mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonOut := flag.String("json", "", "also write metrics as JSON to this path (live only)")
	dataDir := flag.String("data-dir", "", "run the live cluster durably under this directory (live only; default: in-memory)")
	keyDist := flag.String("key-dist", "uniform", "key popularity distribution: uniform|zipf (live only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path (pprof evidence for perf work)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this path on exit")
	flag.Parse()

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canopus-bench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	switch workload.KeyDist(*keyDist) {
	case workload.DistUniform, workload.DistZipf:
	default:
		fmt.Fprintf(os.Stderr, "unknown -key-dist %q (want uniform|zipf)\n", *keyDist)
		os.Exit(2)
	}
	o := harness.NewOptions(
		harness.WithQuick(*quick),
		harness.WithSeed(*seed),
		harness.WithJSONOut(*jsonOut),
		harness.WithDataDir(*dataDir),
		harness.WithKeyDist(workload.KeyDist(*keyDist)),
	)
	runs := map[string]func(*harness.Options){
		"table1":     harness.Table1,
		"fig4a":      harness.Fig4a,
		"fig4b":      harness.Fig4b,
		"fig5":       harness.Fig5,
		"fig6":       harness.Fig6,
		"fig7":       harness.Fig7,
		"live":       harness.Live,
		"live-chaos": harness.LiveChaos,
	}
	order := []string{"table1", "fig4a", "fig4b", "fig5", "fig6", "fig7"}

	start := time.Now()
	switch *exp {
	case "all":
		for _, id := range order {
			fmt.Printf("=== %s ===\n", id)
			runs[id](o)
			fmt.Println()
		}
	default:
		run, ok := runs[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want table1|fig4a|fig4b|fig5|fig6|fig7|all|live|live-chaos)\n", *exp)
			os.Exit(2)
		}
		run(o)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Second))
}
