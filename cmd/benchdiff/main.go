// Command benchdiff is the CI benchmark drift gate: it compares fresh
// benchmark results against a committed baseline and fails (exit 1)
// when any shared metric drifts beyond the threshold.
//
// Two comparison modes:
//
//	# go test -bench output vs BENCH_baseline.json
//	go test -run=NONE -bench=. -benchtime=1x ./... | benchdiff -baseline BENCH_baseline.json
//
//	# live-cluster metrics JSON vs BENCH_live.json
//	canopus-bench -exp live -quick -json fresh.json
//	benchdiff -baseline BENCH_live.json -live fresh.json -only 'allocs_per_request|closed_p50_ms'
//
// Bench mode parses custom metrics (Mreq/s, median-ms) from `go test
// -bench` lines; benchmarks absent from the baseline are reported but
// not gated (new benchmarks are fine), while baseline entries missing
// from the run fail the gate (a deleted or renamed benchmark means the
// baseline must be regenerated, with -write).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchBaseline mirrors BENCH_baseline.json.
type benchBaseline struct {
	Comment    string                        `json:"_comment"`
	GOOS       string                        `json:"goos"`
	GOARCH     string                        `json:"goarch"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// liveBaseline mirrors BENCH_live.json.
type liveBaseline struct {
	Comment string             `json:"_comment"`
	GOOS    string             `json:"goos"`
	GOARCH  string             `json:"goarch"`
	Metrics map[string]float64 `json:"metrics"`
}

// unitMetric maps `go test -bench` custom-metric units to baseline keys.
var unitMetric = map[string]string{
	"Mreq/s":    "mreq_per_s",
	"median-ms": "median_ms",
	"mean-ms":   "mean_ms",
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline JSON (required)")
	livePath := flag.String("live", "", "fresh live-metrics JSON: compare metric maps instead of parsing bench output")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed relative drift per metric")
	only := flag.String("only", "", "regexp: gate only metrics whose name matches (live mode) or benchmarks whose name matches (bench mode)")
	write := flag.String("write", "", "bench mode: write a fresh baseline JSON to this path instead of comparing")
	flag.Parse()

	if *baselinePath == "" && *write == "" {
		fatal("benchdiff: -baseline is required (or -write to regenerate one)")
	}
	var filter *regexp.Regexp
	if *only != "" {
		var err error
		if filter, err = regexp.Compile(*only); err != nil {
			fatal("benchdiff: bad -only pattern: %v", err)
		}
	}

	if *livePath != "" {
		compareLive(*baselinePath, *livePath, *threshold, filter)
		return
	}
	benchMode(*baselinePath, *write, *threshold, filter, flag.Args())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func readJSON(path string, v interface{}) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal("benchdiff: %v", err)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		fatal("benchdiff: parse %s: %v", path, err)
	}
}

// drift is the relative change from old to cur.
func drift(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(cur-old) / math.Abs(old)
}

// --- live mode ---

func compareLive(baselinePath, livePath string, threshold float64, filter *regexp.Regexp) {
	var base, fresh liveBaseline
	readJSON(baselinePath, &base)
	readJSON(livePath, &fresh)

	var violations []string
	keys := sortedKeys(base.Metrics)
	for _, k := range keys {
		if filter != nil && !filter.MatchString(k) {
			fmt.Printf("  %-28s (not gated)\n", k)
			continue
		}
		old := base.Metrics[k]
		cur, ok := fresh.Metrics[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from %s", k, livePath))
			continue
		}
		d := drift(old, cur)
		status := "ok"
		if d > threshold {
			status = "DRIFT"
			violations = append(violations,
				fmt.Sprintf("%s: %.3f -> %.3f (%+.0f%%, limit ±%.0f%%)", k, old, cur, 100*(cur-old)/old, 100*threshold))
		}
		fmt.Printf("  %-28s %12.3f -> %12.3f  %5.1f%%  %s\n", k, old, cur, 100*d, status)
	}
	report(violations, baselinePath)
}

// --- bench mode ---

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts custom metrics (per unitMetric) from bench output.
func parseBench(r io.Reader) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		for i := 0; i+1 < len(rest); i += 2 {
			key, ok := unitMetric[rest[i+1]]
			if !ok {
				continue
			}
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			if out[name] == nil {
				out[name] = make(map[string]float64)
			}
			out[name][key] = v
		}
	}
	return out
}

func benchMode(baselinePath, writePath string, threshold float64, filter *regexp.Regexp, args []string) {
	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal("benchdiff: %v", err)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fatal("benchdiff: at most one input file (or stdin)")
	}
	fresh := parseBench(in)
	if len(fresh) == 0 {
		fatal("benchdiff: no benchmark metrics found in input")
	}

	if writePath != "" {
		writeBaseline(writePath, fresh)
		return
	}

	var base benchBaseline
	readJSON(baselinePath, &base)
	var violations []string
	for _, name := range sortedKeys(base.Benchmarks) {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		want := base.Benchmarks[name]
		got, ok := fresh[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: in baseline but not in this run (regenerate with -write?)", name))
			continue
		}
		for _, metric := range sortedKeys(want) {
			old := want[metric]
			cur, ok := got[metric]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s %s: metric missing from run", name, metric))
				continue
			}
			d := drift(old, cur)
			status := "ok"
			if d > threshold {
				status = "DRIFT"
				violations = append(violations,
					fmt.Sprintf("%s %s: %.4g -> %.4g (%+.0f%%, limit ±%.0f%%)",
						name, metric, old, cur, 100*(cur-old)/old, 100*threshold))
			}
			fmt.Printf("  %-40s %-12s %10.4g -> %10.4g  %5.1f%%  %s\n", name, metric, old, cur, 100*d, status)
		}
	}
	for name := range fresh {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("  %-40s (not in baseline; not gated)\n", name)
		}
	}
	report(violations, baselinePath)
}

func writeBaseline(path string, fresh map[string]map[string]float64) {
	doc := benchBaseline{
		Comment: "Snapshot of `go test -run=NONE -bench=. -benchtime=1x ./...` custom metrics (Mreq/s and median-ms), " +
			"regenerated by `benchdiff -write`. Single-iteration virtual-time runs are deterministic per seed, so " +
			"CI (cmd/benchdiff) fails on drift beyond its threshold: drift indicates a real behavioral change, not noise.",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: fresh,
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal("benchdiff: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal("benchdiff: %v", err)
	}
	fmt.Printf("benchdiff: wrote %s (%d benchmarks)\n", path, len(fresh))
}

func report(violations []string, baselinePath string) {
	if len(violations) == 0 {
		fmt.Printf("benchdiff: OK (within threshold of %s)\n", baselinePath)
		return
	}
	fmt.Printf("benchdiff: %d metric(s) drifted beyond threshold:\n", len(violations))
	for _, v := range violations {
		fmt.Println("  " + v)
	}
	os.Exit(1)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
