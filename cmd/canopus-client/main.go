// Command canopus-client talks to canopus-server's client port.
//
// Interactive (text protocol): run with no arguments and type
// "PUT 7 hello", "GET 7" or "DEL 7".
//
// One-shot (binary protocol v2, via the public canopus/client package):
// pass a command —
//
//	canopus-client -addr 127.0.0.1:8000 put 7 hello
//	canopus-client -addr 127.0.0.1:8000 get 7
//	canopus-client -addr 127.0.0.1:8000 -consistency stale get 7
//	canopus-client -addr 127.0.0.1:8000 del 7
//
// -addr takes a comma-separated endpoint list; the client fails over
// along it. -consistency selects the read path: linearizable (default,
// ordered through consensus), sequential (local committed state,
// monotone per session) or stale (local committed state, immediate).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"canopus/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8000", "comma-separated canopus-server client addresses")
	level := flag.String("consistency", "linearizable", "read consistency: linearizable | sequential | stale")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout")
	flag.Parse()

	if flag.NArg() > 0 {
		oneShot(strings.Split(*addr, ","), *level, *timeout, flag.Args())
		return
	}

	interactive(strings.Split(*addr, ",")[0])
}

// interactive runs the line-oriented text protocol over a raw socket.
func interactive(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; commands: PUT <key> <value> | GET <key> | DEL <key> | QUIT\n", addr)

	// The reader goroutine ends the process once the server closes the
	// connection (e.g. after QUIT), with all replies printed. A broken
	// connection is an error exit: replies may have been lost.
	go func() {
		if _, err := io.Copy(os.Stdout, conn); err != nil {
			log.Fatal("canopus-client: connection error: ", err)
		}
		os.Exit(0)
	}()
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
		w.Flush()
	}
	// Stdin ended (piped input): half-close so the server drains our
	// in-flight requests and closes; the reader goroutine then exits the
	// process after printing the remaining replies.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	time.Sleep(30 * time.Second) // reader goroutine exits first
	log.Fatal("canopus-client: server never closed the connection")
}

// oneShot executes a single command through the typed client API.
func oneShot(endpoints []string, level string, timeout time.Duration, args []string) {
	consistency, err := parseLevel(level)
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	cl, err := client.New(client.Config{Endpoints: endpoints, RequestTimeout: timeout})
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	defer cl.Close()
	ctx := context.Background()

	switch cmd := strings.ToLower(args[0]); cmd {
	case "put":
		if len(args) < 3 {
			log.Fatal("canopus-client: usage: put <key> <value>")
		}
		if err := cl.Put(ctx, parseKey(args[1]), []byte(strings.Join(args[2:], " "))); err != nil {
			log.Fatal("canopus-client: ", err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("canopus-client: usage: get <key>")
		}
		val, err := cl.Get(ctx, parseKey(args[1]), client.WithConsistency(consistency))
		if errors.Is(err, client.ErrNotFound) {
			fmt.Println("NIL")
			os.Exit(1)
		}
		if err != nil {
			log.Fatal("canopus-client: ", err)
		}
		fmt.Printf("%s\n", val)
	case "del":
		if len(args) != 2 {
			log.Fatal("canopus-client: usage: del <key>")
		}
		if err := cl.Delete(ctx, parseKey(args[1])); err != nil {
			log.Fatal("canopus-client: ", err)
		}
		fmt.Println("OK")
	default:
		log.Fatalf("canopus-client: unknown command %q (want put|get|del)", cmd)
	}
}

func parseLevel(s string) (client.Consistency, error) {
	switch strings.ToLower(s) {
	case "linearizable", "":
		return client.Linearizable, nil
	case "sequential":
		return client.Sequential, nil
	case "stale":
		return client.Stale, nil
	default:
		return 0, fmt.Errorf("unknown consistency %q (want linearizable|sequential|stale)", s)
	}
}

func parseKey(s string) uint64 {
	k, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("canopus-client: bad key %q", s)
	}
	return k
}
