// Command canopus-client talks to canopus-server's client port.
//
// Interactive (text protocol): run with no arguments and type
// "PUT 7 hello" or "GET 7".
//
// One-shot (binary protocol): pass a command —
//
//	canopus-client -addr 127.0.0.1:8000 put 7 hello
//	canopus-client -addr 127.0.0.1:8000 get 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"canopus/internal/livecluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8000", "canopus-server client address")
	flag.Parse()

	if flag.NArg() > 0 {
		oneShot(*addr, flag.Args())
		return
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; commands: PUT <key> <value> | GET <key> | QUIT\n", *addr)

	// The reader goroutine ends the process once the server closes the
	// connection (e.g. after QUIT), with all replies printed. A broken
	// connection is an error exit: replies may have been lost.
	go func() {
		if _, err := io.Copy(os.Stdout, conn); err != nil {
			log.Fatal("canopus-client: connection error: ", err)
		}
		os.Exit(0)
	}()
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
		w.Flush()
	}
	// Stdin ended (piped input): half-close so the server drains our
	// in-flight requests and closes; the reader goroutine then exits the
	// process after printing the remaining replies.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	time.Sleep(30 * time.Second) // reader goroutine exits first
	log.Fatal("canopus-client: server never closed the connection")
}

// oneShot executes a single command over the binary protocol.
func oneShot(addr string, args []string) {
	cl, err := livecluster.Dial(addr)
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	defer cl.Close()

	cmd := strings.ToLower(args[0])
	switch cmd {
	case "put":
		if len(args) < 3 {
			log.Fatal("canopus-client: usage: put <key> <value>")
		}
		key := parseKey(args[1])
		if err := cl.Put(key, []byte(strings.Join(args[2:], " "))); err != nil {
			log.Fatal("canopus-client: ", err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("canopus-client: usage: get <key>")
		}
		val, ok, err := cl.Get(parseKey(args[1]))
		if err != nil {
			log.Fatal("canopus-client: ", err)
		}
		if !ok {
			fmt.Println("NIL")
			os.Exit(1)
		}
		fmt.Printf("%s\n", val)
	default:
		log.Fatalf("canopus-client: unknown command %q (want put|get)", cmd)
	}
}

func parseKey(s string) uint64 {
	k, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("canopus-client: bad key %q", s)
	}
	return k
}
