// Command canopus-client is an interactive client for canopus-server's
// line protocol: type "PUT 7 hello" or "GET 7".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8000", "canopus-server client address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal("canopus-client: ", err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; commands: PUT <key> <value> | GET <key> | QUIT\n", *addr)

	go func() {
		if _, err := io.Copy(os.Stdout, conn); err == nil {
			os.Exit(0)
		}
	}()
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fmt.Fprintln(w, sc.Text())
		w.Flush()
	}
}
