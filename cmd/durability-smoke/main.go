// Command durability-smoke is the CI crash-recovery gate for the
// durable storage engine. It boots a three-node loopback cluster of real
// canopus-server processes with -data-dir, drives client load over the
// text protocol, captures the replicas' agreed state digest, SIGKILLs
// every process (no drain, no graceful close — a power cut), restarts
// the cluster from the same data directories, and fails unless the
// recovered replicas converge to the exact pre-kill digest.
//
//	durability-smoke -server ./bin/canopus-server [-ops 300] [-timeout 60s]
//
// Exit status 0 means the durable state survived the kill bit-exactly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"
)

const nodes = 3

func main() {
	server := flag.String("server", "", "path to the canopus-server binary (required)")
	ops := flag.Int("ops", 300, "PUTs to drive before the kill")
	snapshotCycles := flag.Int("snapshot-cycles", 16, "snapshot cadence handed to the servers")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for each phase")
	keep := flag.Bool("keep", false, "keep the data directories on exit (for debugging)")
	flag.Parse()
	if *server == "" {
		log.Fatal("durability-smoke: -server is required")
	}

	root, err := os.MkdirTemp("", "canopus-durability-smoke-")
	if err != nil {
		log.Fatal("durability-smoke: ", err)
	}
	if !*keep {
		defer os.RemoveAll(root)
	}

	peerAddrs := reservePorts(nodes)
	clientAddrs := reservePorts(nodes)
	peers := peerAddrs[0]
	for _, a := range peerAddrs[1:] {
		peers += "," + a
	}

	start := func(i int) *exec.Cmd {
		cmd := exec.Command(*server,
			"-id", strconv.Itoa(i),
			"-peers", peers,
			"-client", clientAddrs[i],
			"-data-dir", filepath.Join(root, fmt.Sprintf("node-%d", i)),
			"-snapshot-cycles", strconv.Itoa(*snapshotCycles),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("durability-smoke: start node %d: %v", i, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		procs[i] = start(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	for i, addr := range clientAddrs {
		if err := waitReachable(addr, *timeout); err != nil {
			log.Fatalf("durability-smoke: node %d client port: %v", i, err)
		}
	}
	log.Printf("durability-smoke: cluster up, driving %d PUTs", *ops)

	// Drive pipelined text-protocol load, spread across all three nodes.
	// Every reply is read back: an OK is fsync-gated by the server, so
	// everything acked here is durable by contract — exactly what the
	// kill below must not lose.
	for i := 0; i < nodes; i++ {
		if err := drive(clientAddrs[i], i, *ops/nodes); err != nil {
			log.Fatalf("durability-smoke: load via node %d: %v", i, err)
		}
	}

	// The replicas quiesce to one identity (laggards finish the last
	// cycles); capture it.
	before, err := converge(clientAddrs, *timeout)
	if err != nil {
		log.Fatal("durability-smoke: pre-kill digests: ", err)
	}
	log.Printf("durability-smoke: pre-kill state digest %016x", before)
	if before == 0 {
		log.Fatal("durability-smoke: pre-kill digest is zero; load did not apply")
	}

	// Power cut: SIGKILL, no warning. Buffered WAL bytes past the last
	// fsync are gone; acked writes must not be.
	for i, p := range procs {
		if err := p.Process.Kill(); err != nil {
			log.Fatalf("durability-smoke: kill node %d: %v", i, err)
		}
		p.Wait()
	}
	log.Print("durability-smoke: all nodes SIGKILLed; restarting from disk")

	for i := range procs {
		procs[i] = start(i)
	}
	for i, addr := range clientAddrs {
		if err := waitReachable(addr, *timeout); err != nil {
			log.Fatalf("durability-smoke: node %d client port after restart: %v", i, err)
		}
	}

	after, err := converge(clientAddrs, *timeout)
	if err != nil {
		log.Fatal("durability-smoke: post-restart digests: ", err)
	}
	if after != before {
		log.Fatalf("durability-smoke: FAIL: recovered state digest %016x != pre-kill %016x", after, before)
	}
	log.Printf("durability-smoke: PASS: recovered state digest %016x matches pre-kill", after)
}

// reservePorts binds n loopback listeners to pick free ports, then
// releases them for the servers to claim.
func reservePorts(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal("durability-smoke: ", err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func waitReachable(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not reachable after %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// drive sends n pipelined PUTs over one text-protocol connection and
// requires an OK for each.
func drive(addr string, node, n int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	w := bufio.NewWriter(conn)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "PUT %d smoke-%d-%d\n", node*1_000_000+i, node, i)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reply %d: %w", i, err)
		}
		if line != "OK\n" {
			return fmt.Errorf("reply %d: %q", i, line)
		}
	}
	return nil
}

// digest asks one node for its replica identity.
func digest(addr string) (cycle, state uint64, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "DIGEST\n"); err != nil {
		return 0, 0, err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	var logd uint64
	if _, err := fmt.Sscanf(line, "DIGEST %d %x %x", &cycle, &state, &logd); err != nil {
		return 0, 0, fmt.Errorf("reply %q: %w", line, err)
	}
	return cycle, state, nil
}

// converge polls every node until all report the same state digest, and
// returns it.
func converge(addrs []string, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		states := make([]uint64, len(addrs))
		ok := true
		for i, addr := range addrs {
			_, state, err := digest(addr)
			if err != nil {
				ok = false
				break
			}
			states[i] = state
		}
		if ok {
			same := true
			for _, s := range states[1:] {
				if s != states[0] {
					same = false
					break
				}
			}
			if same {
				return states[0], nil
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("replicas did not converge in %v (states %x)", timeout, states)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
