// Command durability-smoke is the CI crash-recovery gate for the
// durable storage engine. It boots a three-node loopback cluster of real
// canopus-server processes with -data-dir and -admin-addr, drives client
// load over the text protocol, captures the replicas' agreed state
// digest through the admin gateway, SIGKILLs every process (no drain, no
// graceful close — a power cut), restarts the cluster from the same data
// directories, and fails unless the recovered replicas converge to the
// exact pre-kill digest.
//
// Along the way it doubles as the operations-plane gate: before the kill
// it scrapes every node's /metrics and /status (full instrument
// inventory, fsyncs observed, durable watermark advancing), and after
// recovery it asserts the applied watermarks re-converge at or above the
// pre-kill durable cycle.
//
//	durability-smoke -server ./bin/canopus-server [-ops 300] [-timeout 60s]
//
// Exit status 0 means the durable state survived the kill bit-exactly.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"canopus/admin"
)

const nodes = 3

func main() {
	server := flag.String("server", "", "path to the canopus-server binary (required)")
	ops := flag.Int("ops", 300, "PUTs to drive before the kill")
	snapshotCycles := flag.Int("snapshot-cycles", 16, "snapshot cadence handed to the servers")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline for each phase")
	keep := flag.Bool("keep", false, "keep the data directories on exit (for debugging)")
	flag.Parse()
	if *server == "" {
		log.Fatal("durability-smoke: -server is required")
	}

	root, err := os.MkdirTemp("", "canopus-durability-smoke-")
	if err != nil {
		log.Fatal("durability-smoke: ", err)
	}
	if !*keep {
		defer os.RemoveAll(root)
	}

	peerAddrs := reservePorts(nodes)
	clientAddrs := reservePorts(nodes)
	adminAddrs := reservePorts(nodes)
	peers := peerAddrs[0]
	for _, a := range peerAddrs[1:] {
		peers += "," + a
	}
	admins := make([]*admin.Client, nodes)
	for i := range admins {
		admins[i] = admin.New(adminAddrs[i])
	}

	start := func(i int) *exec.Cmd {
		cmd := exec.Command(*server,
			"-id", strconv.Itoa(i),
			"-peers", peers,
			"-client", clientAddrs[i],
			"-admin-addr", adminAddrs[i],
			"-data-dir", filepath.Join(root, fmt.Sprintf("node-%d", i)),
			"-snapshot-cycles", strconv.Itoa(*snapshotCycles),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("durability-smoke: start node %d: %v", i, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		procs[i] = start(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	waitAllHealthy(admins, *timeout)
	log.Printf("durability-smoke: cluster up, driving %d PUTs", *ops)

	// Drive pipelined text-protocol load, spread across all three nodes.
	// Every reply is read back: an OK is fsync-gated by the server, so
	// everything acked here is durable by contract — exactly what the
	// kill below must not lose.
	for i := 0; i < nodes; i++ {
		if err := drive(clientAddrs[i], i, *ops/nodes); err != nil {
			log.Fatalf("durability-smoke: load via node %d: %v", i, err)
		}
	}

	// The replicas quiesce to one identity (laggards finish the last
	// cycles); capture it through the admin gateway.
	before, err := converge(admins, *timeout)
	if err != nil {
		log.Fatal("durability-smoke: pre-kill digests: ", err)
	}
	log.Printf("durability-smoke: pre-kill state digest %016x", before.State)
	if before.State == 0 {
		log.Fatal("durability-smoke: pre-kill digest is zero; load did not apply")
	}

	// The text DIGEST verb is a shim over the same DigestSource the
	// gateway serves; one raw-socket check keeps the shim honest.
	if state, err := textDigest(clientAddrs[0]); err != nil {
		log.Fatal("durability-smoke: text DIGEST shim: ", err)
	} else if state != before.State {
		log.Fatalf("durability-smoke: text DIGEST %016x disagrees with admin digest %016x", state, before.State)
	}

	// Operations-plane gate: every node's /metrics must expose the full
	// instrument inventory, and /status must show durable progress.
	if err := scrapeCheck(admins); err != nil {
		log.Fatal("durability-smoke: pre-kill metrics scrape: ", err)
	}
	preDurable, err := minDurableCycle(admins)
	if err != nil {
		log.Fatal("durability-smoke: pre-kill status: ", err)
	}
	if preDurable == 0 {
		log.Fatal("durability-smoke: fsync-gated load left durable cycle at 0")
	}
	log.Printf("durability-smoke: metrics + status healthy, min durable cycle %d", preDurable)

	// Power cut: SIGKILL, no warning. Buffered WAL bytes past the last
	// fsync are gone; acked writes must not be.
	for i, p := range procs {
		if err := p.Process.Kill(); err != nil {
			log.Fatalf("durability-smoke: kill node %d: %v", i, err)
		}
		p.Wait()
	}
	log.Print("durability-smoke: all nodes SIGKILLed; restarting from disk")

	for i := range procs {
		procs[i] = start(i)
	}
	waitAllHealthy(admins, *timeout)

	after, err := converge(admins, *timeout)
	if err != nil {
		log.Fatal("durability-smoke: post-restart digests: ", err)
	}
	if after.State != before.State {
		log.Fatalf("durability-smoke: FAIL: recovered state digest %016x != pre-kill %016x", after.State, before.State)
	}

	// Recovery replays the WAL to at least the pre-kill durable cycle, so
	// every replica's applied watermark must come back at or above it —
	// and, at quiesce, within one convergence window of each other.
	if err := watermarksConverged(admins, preDurable, *timeout); err != nil {
		log.Fatal("durability-smoke: post-recovery watermarks: ", err)
	}
	log.Printf("durability-smoke: PASS: recovered state digest %016x matches pre-kill; watermarks re-converged", after.State)
}

// reservePorts binds n loopback listeners to pick free ports, then
// releases them for the servers to claim.
func reservePorts(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal("durability-smoke: ", err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// waitAllHealthy polls every admin gateway until /healthz reports ok.
// The gateway binds before WAL replay starts, so during recovery this
// sees 503 "recovering" rather than connection-refused — and "ok" means
// the client port is accepting too.
func waitAllHealthy(admins []*admin.Client, timeout time.Duration) {
	for i, cl := range admins {
		deadline := time.Now().Add(timeout)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			h, err := cl.Health(ctx)
			cancel()
			if err == nil && h.Status == "ok" {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("durability-smoke: node %d not healthy after %v (status %q, err %v)", i, timeout, h.Status, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// drive sends n pipelined PUTs over one text-protocol connection and
// requires an OK for each.
func drive(addr string, node, n int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	w := bufio.NewWriter(conn)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "PUT %d smoke-%d-%d\n", node*1_000_000+i, node, i)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reply %d: %w", i, err)
		}
		if line != "OK\n" {
			return fmt.Errorf("reply %d: %q", i, line)
		}
	}
	return nil
}

// textDigest asks one node for its state digest over the legacy text
// protocol.
func textDigest(addr string) (uint64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "DIGEST\n"); err != nil {
		return 0, err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, err
	}
	var cycle, state, logd uint64
	if _, err := fmt.Sscanf(line, "DIGEST %d %x %x", &cycle, &state, &logd); err != nil {
		return 0, fmt.Errorf("reply %q: %w", line, err)
	}
	return state, nil
}

// converge polls every node until all report the same state digest, and
// returns it.
func converge(admins []*admin.Client, timeout time.Duration) (admin.Digest, error) {
	deadline := time.Now().Add(timeout)
	for {
		digests := make([]admin.Digest, len(admins))
		ok := true
		for i, cl := range admins {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			d, err := cl.Digest(ctx)
			cancel()
			if err != nil {
				ok = false
				break
			}
			digests[i] = d
		}
		if ok {
			same := true
			for _, d := range digests[1:] {
				if d.State != digests[0].State {
					same = false
					break
				}
			}
			if same {
				return digests[0], nil
			}
		}
		if time.Now().After(deadline) {
			return admin.Digest{}, fmt.Errorf("replicas did not converge in %v (%+v)", timeout, digests)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// instrumentPrefixes are the four subsystems the gateway must cover.
var instrumentPrefixes = []string{
	"canopus_core_", "canopus_transport_", "canopus_wal_", "canopus_client_",
}

// scrapeCheck asserts each node's /metrics exposes the operations-plane
// inventory: at least 12 distinct instrument families spanning all four
// subsystem prefixes, with WAL fsyncs actually observed.
func scrapeCheck(admins []*admin.Client) error {
	for i, cl := range admins {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		series, err := cl.Metrics(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		families := map[string]bool{}
		covered := map[string]bool{}
		var fsyncs float64
		for key, v := range series {
			name := key
			if j := strings.IndexByte(name, '{'); j >= 0 {
				name = name[:j]
			}
			if !strings.HasPrefix(name, "canopus_") {
				continue
			}
			families[name] = true
			for _, p := range instrumentPrefixes {
				if strings.HasPrefix(name, p) {
					covered[p] = true
				}
			}
			if name == "canopus_wal_fsyncs_total" {
				fsyncs += v
			}
		}
		if len(families) < 12 {
			return fmt.Errorf("node %d: only %d instrument families exposed, want >= 12", i, len(families))
		}
		if len(covered) != len(instrumentPrefixes) {
			return fmt.Errorf("node %d: instrument families cover %d/%d subsystems", i, len(covered), len(instrumentPrefixes))
		}
		if fsyncs == 0 {
			return fmt.Errorf("node %d: canopus_wal_fsyncs_total is 0 after fsync-gated load", i)
		}
	}
	return nil
}

// minDurableCycle reads /status on every node and returns the smallest
// durable cycle.
func minDurableCycle(admins []*admin.Client) (uint64, error) {
	min := ^uint64(0)
	for i, cl := range admins {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := cl.Status(ctx)
		cancel()
		if err != nil {
			return 0, fmt.Errorf("node %d: %w", i, err)
		}
		if st.Durability == nil {
			return 0, fmt.Errorf("node %d: /status has no durability section", i)
		}
		if st.Durability.DurableCycle < min {
			min = st.Durability.DurableCycle
		}
	}
	return min, nil
}

// watermarksConverged polls the canopus_core_cycle_applied gauge on
// every node until each is at or above floor and all sit within one
// convergence window (cycles advance continuously, so exact equality at
// a sampled instant is not expected).
func watermarksConverged(admins []*admin.Client, floor uint64, timeout time.Duration) error {
	const window = 64
	deadline := time.Now().Add(timeout)
	var last []float64
	for {
		applied := make([]float64, len(admins))
		ok := true
		for i, cl := range admins {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			series, err := cl.Metrics(ctx)
			cancel()
			if err != nil {
				ok = false
				break
			}
			found := false
			for key, v := range series {
				name := key
				if j := strings.IndexByte(name, '{'); j >= 0 {
					name = name[:j]
				}
				if name == "canopus_core_cycle_applied" {
					applied[i] = v
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("node %d: canopus_core_cycle_applied missing from /metrics", i)
			}
		}
		if ok {
			last = applied
			lo, hi := applied[0], applied[0]
			for _, v := range applied[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo >= float64(floor) && hi-lo <= window {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("applied watermarks did not re-converge above cycle %d in %v (last %v)", floor, timeout, last)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
